// The exec subsystem: ThreadPool scheduling, k-NN collection, and
// QueryEngine batch execution (parity with serial execution, k=1 parity
// with the original single-NN behavior, k>1 against brute force).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/coconut_forest.h"
#include "src/core/coconut_tree.h"
#include "src/core/knn.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

// --- ThreadPool ---

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 7, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SerialFallbackRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1u);
  uint64_t sum = 0;  // no synchronization: must run on this thread
  pool.ParallelFor(0, 100, 0, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      // Inner loops contend for the same 2 workers; caller participation
      // must keep everything moving.
      pool.ParallelFor(0, 16, 1, [&](uint64_t ilo, uint64_t ihi) {
        total.fetch_add(ihi - ilo, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPool, AsyncReturnsFutureResult) {
  ThreadPool pool(2);
  auto fut = pool.Async([]() { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

// --- KnnCollector ---

TEST(KnnCollector, KeepsKSmallestAndDedupes) {
  KnnCollector knn(3);
  EXPECT_TRUE(std::isinf(knn.bound_sq()));
  knn.Offer(0, 9.0);
  knn.Offer(8, 1.0);
  knn.Offer(16, 4.0);
  EXPECT_DOUBLE_EQ(knn.bound_sq(), 9.0);
  knn.Offer(8, 1.0);   // duplicate offset: ignored
  knn.Offer(24, 2.0);  // evicts 9.0
  EXPECT_DOUBLE_EQ(knn.bound_sq(), 4.0);
  knn.Offer(32, 100.0);  // worse than the bound: ignored
  SearchResult r;
  knn.Finalize(&r);
  ASSERT_EQ(r.neighbors.size(), 3u);
  EXPECT_EQ(r.neighbors[0].offset, 8u);
  EXPECT_NEAR(r.neighbors[0].distance, 1.0, 1e-12);
  EXPECT_EQ(r.neighbors[1].offset, 24u);
  EXPECT_EQ(r.neighbors[2].offset, 16u);
  EXPECT_EQ(r.offset, 8u);
  EXPECT_NEAR(r.distance, 1.0, 1e-12);
}

// --- k-NN on the tree ---

/// Brute-force k-NN over in-memory data; returns (index, distance) pairs in
/// ascending distance order.
std::vector<std::pair<size_t, double>> BruteForceKnn(
    const std::vector<Series>& data, const Series& query, size_t k) {
  std::vector<std::pair<double, size_t>> all;
  all.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < query.size(); ++j) {
      const double d = static_cast<double>(data[i][j]) -
                       static_cast<double>(query[j]);
      sum += d * d;
    }
    all.emplace_back(std::sqrt(sum), i);
  }
  std::sort(all.begin(), all.end());
  std::vector<std::pair<size_t, double>> out;
  for (size_t i = 0; i < std::min(k, all.size()); ++i) {
    out.emplace_back(all[i].second, all[i].first);
  }
  return out;
}

CoconutOptions SmallTree(const ScratchDir& dir) {
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 64;
  opts.tmp_dir = dir.path();
  return opts;
}

TEST(Knn, TreeK1MatchesSingleNearestNeighbor) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 600, 64, 901);
  const std::string index = dir.File("tree.idx");
  ASSERT_OK(CoconutTree::Build(raw, index, SmallTree(dir)));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));

  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 902);
  for (int q = 0; q < 8; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
    SearchResult r;
    ASSERT_OK(tree->ExactSearch(query.data(), 1, &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4);
    ASSERT_EQ(r.neighbors.size(), 1u);
    EXPECT_EQ(r.neighbors[0].offset, r.offset);
    EXPECT_NEAR(r.neighbors[0].distance, r.distance, 1e-12);
  }
}

TEST(Knn, TreeTopKMatchesBruteForce) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 500, 64, 903);
  const std::string index = dir.File("tree.idx");
  ASSERT_OK(CoconutTree::Build(raw, index, SmallTree(dir)));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));

  const uint64_t series_bytes = 64 * sizeof(Value);
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 904);
  for (int q = 0; q < 6; ++q) {
    const Series query = qgen->NextSeries();
    const size_t k = 5;
    const auto expected = BruteForceKnn(data, query, k);
    SearchResult r;
    ASSERT_OK(tree->ExactSearch(query.data(), 1, &r, k));
    ASSERT_EQ(r.neighbors.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(r.neighbors[i].distance, expected[i].second, 1e-4)
          << "rank " << i;
      EXPECT_EQ(r.neighbors[i].offset, expected[i].first * series_bytes)
          << "rank " << i;
    }
  }
}

TEST(Knn, ForestTopKMatchesBruteForceAcrossRuns) {
  ScratchDir dir;
  ForestOptions opts;
  opts.tree.summary.series_length = 64;
  opts.tree.summary.segments = 16;
  opts.tree.leaf_capacity = 64;
  opts.tree.tmp_dir = dir.path();
  opts.memtable_series = 150;
  opts.max_runs = 8;  // keep several runs alive: k-NN must merge them
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                opts, &forest));

  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 905);
  std::vector<Series> data;
  for (int i = 0; i < 700; ++i) data.push_back(gen->NextSeries());
  ASSERT_OK(forest->InsertBatch(data));
  EXPECT_GT(forest->num_runs(), 1u);  // plus a non-empty memtable

  const uint64_t series_bytes = 64 * sizeof(Value);
  for (int q = 0; q < 5; ++q) {
    const Series query = gen->NextSeries();
    const size_t k = 4;
    const auto expected = BruteForceKnn(data, query, k);
    SearchResult r;
    ASSERT_OK(forest->ExactSearch(query.data(), &r, k));
    ASSERT_EQ(r.neighbors.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(r.neighbors[i].distance, expected[i].second, 1e-4)
          << "rank " << i;
      EXPECT_EQ(r.neighbors[i].offset, expected[i].first * series_bytes)
          << "rank " << i;
    }
  }
}

// --- QueryEngine ---

TEST(QueryEngine, TreeBatchMatchesSerialExecution) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 800, 64, 906);
  const std::string index = dir.File("tree.idx");
  ASSERT_OK(CoconutTree::Build(raw, index, SmallTree(dir)));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));

  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 907);
  std::vector<Series> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(qgen->NextSeries());

  ThreadPool pool(4);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 3;
  std::vector<SearchResult> batch;
  ASSERT_OK(engine.ExecuteBatch(*tree, queries, spec, &batch));
  ASSERT_EQ(batch.size(), queries.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    SearchResult serial;
    ASSERT_OK(tree->ExactSearch(queries[i].data(), 1, &serial, spec.k));
    ASSERT_EQ(batch[i].neighbors.size(), serial.neighbors.size());
    for (size_t j = 0; j < serial.neighbors.size(); ++j) {
      EXPECT_EQ(batch[i].neighbors[j].offset, serial.neighbors[j].offset);
      EXPECT_NEAR(batch[i].neighbors[j].distance,
                  serial.neighbors[j].distance, 1e-12);
    }
  }
}

TEST(QueryEngine, ForestBatchOn4ThreadsMatchesSerialExecution) {
  ScratchDir dir;
  ForestOptions opts;
  opts.tree.summary.series_length = 64;
  opts.tree.summary.segments = 16;
  opts.tree.leaf_capacity = 64;
  opts.tree.tmp_dir = dir.path();
  opts.memtable_series = 200;
  opts.max_runs = 8;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                opts, &forest));
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 908);
  std::vector<Series> data;
  for (int i = 0; i < 900; ++i) data.push_back(gen->NextSeries());
  ASSERT_OK(forest->InsertBatch(data));
  EXPECT_GT(forest->num_runs(), 1u);

  std::vector<Series> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(gen->NextSeries());

  ThreadPool pool(4);
  ASSERT_GE(pool.parallelism(), 4u);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 2;
  std::vector<SearchResult> batch;
  ASSERT_OK(engine.ExecuteBatch(*forest, queries, spec, &batch));
  ASSERT_EQ(batch.size(), queries.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    SearchResult serial;
    ASSERT_OK(forest->ExactSearch(queries[i].data(), &serial, spec.k));
    ASSERT_EQ(batch[i].neighbors.size(), serial.neighbors.size());
    for (size_t j = 0; j < serial.neighbors.size(); ++j) {
      EXPECT_EQ(batch[i].neighbors[j].offset, serial.neighbors[j].offset);
      EXPECT_NEAR(batch[i].neighbors[j].distance,
                  serial.neighbors[j].distance, 1e-12);
    }
    // Cross-check the top-1 against the brute-force oracle.
    const auto [bf_idx, bf_dist] = BruteForceNn(data, queries[i]);
    EXPECT_NEAR(batch[i].distance, bf_dist, 1e-4);
  }
}

TEST(QueryEngine, ApproxBatchMatchesSerial) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 400, 64, 909);
  const std::string index = dir.File("tree.idx");
  ASSERT_OK(CoconutTree::Build(raw, index, SmallTree(dir)));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));

  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 910);
  std::vector<Series> queries;
  for (int i = 0; i < 32; ++i) queries.push_back(qgen->NextSeries());

  ThreadPool pool(4);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kApprox;
  spec.approx_leaves = 3;
  std::vector<SearchResult> batch;
  ASSERT_OK(engine.ExecuteBatch(*tree, queries, spec, &batch));
  for (size_t i = 0; i < queries.size(); ++i) {
    SearchResult serial;
    ASSERT_OK(tree->ApproxSearch(queries[i].data(), 3, &serial));
    EXPECT_EQ(batch[i].offset, serial.offset);
    EXPECT_NEAR(batch[i].distance, serial.distance, 1e-12);
  }
}

}  // namespace
}  // namespace coconut
