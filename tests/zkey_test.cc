#include "src/common/zkey.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"

namespace coconut {
namespace {

TEST(ZKey, DefaultIsZeroAndMinimal) {
  ZKey k;
  EXPECT_EQ(k, ZKey());
  EXPECT_TRUE(k <= ZKey::Max());
  for (size_t i = 0; i < ZKey::kBits; ++i) EXPECT_EQ(k.GetBit(i), 0u);
}

TEST(ZKey, SetAndGetBits) {
  ZKey k;
  k.SetBit(0);
  EXPECT_EQ(k.GetBit(0), 1u);
  EXPECT_EQ(k.words()[0], uint64_t{1} << 63);
  k.SetBit(255);
  EXPECT_EQ(k.GetBit(255), 1u);
  EXPECT_EQ(k.words()[3], uint64_t{1});
  k.ClearBit(0);
  EXPECT_EQ(k.GetBit(0), 0u);
}

TEST(ZKey, MsbDominatesComparison) {
  ZKey hi, lo;
  hi.SetBit(0);           // only the most significant bit
  for (size_t i = 1; i < ZKey::kBits; ++i) lo.SetBit(i);  // all other bits
  EXPECT_TRUE(lo < hi);
}

TEST(ZKey, SerializeRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    ZKey k;
    for (size_t i = 0; i < ZKey::kBits; ++i) {
      if (rng.Uniform() < 0.5) k.SetBit(i);
    }
    uint8_t buf[ZKey::kBytes];
    k.SerializeBE(buf);
    EXPECT_EQ(ZKey::DeserializeBE(buf), k);
  }
}

TEST(ZKey, MemcmpOrderMatchesOperatorOrder) {
  Rng rng(13);
  std::vector<ZKey> keys;
  for (int i = 0; i < 200; ++i) {
    ZKey k;
    for (size_t b = 0; b < ZKey::kBits; ++b) {
      if (rng.Uniform() < 0.3) k.SetBit(b);
    }
    keys.push_back(k);
  }
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    uint8_t a[ZKey::kBytes], b[ZKey::kBytes];
    keys[i].SerializeBE(a);
    keys[i + 1].SerializeBE(b);
    const int cmp = std::memcmp(a, b, ZKey::kBytes);
    if (keys[i] < keys[i + 1]) {
      EXPECT_LT(cmp, 0);
    } else if (keys[i + 1] < keys[i]) {
      EXPECT_GT(cmp, 0);
    } else {
      EXPECT_EQ(cmp, 0);
    }
  }
}

TEST(ZKey, CommonPrefixBits) {
  ZKey a, b;
  EXPECT_EQ(ZKey::CommonPrefixBits(a, b), ZKey::kBits);
  b.SetBit(100);
  EXPECT_EQ(ZKey::CommonPrefixBits(a, b), 100u);
  a.SetBit(0);
  EXPECT_EQ(ZKey::CommonPrefixBits(a, b), 0u);
}

TEST(ZKey, ToHexOfKnownPattern) {
  ZKey k;
  k.SetBit(4);  // 0x08 in the top byte
  const std::string hex = k.ToHex();
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex.substr(0, 2), "08");
}

}  // namespace
}  // namespace coconut
