// CommitJournal: the store-wide group-commit epoch journal that makes
// cross-shard batches atomic.
//
// A cross-shard `ShardedStore::InsertBatch` is stamped with a monotonically
// increasing *epoch* and recorded here in two steps, the same write-ahead
// discipline LSM engines use for their MANIFEST/WAL pair:
//
//   1. `begin <epoch>` is appended (and synced) BEFORE any shard receives
//      its sub-batch. The record names every shard the epoch touches along
//      with the shard's raw-file size before the append and the number of
//      series headed its way — O(shards touched), not O(batch).
//   2. `commit <epoch>` is appended (and synced) only after EVERY shard's
//      raw append is durable.
//
// On reopen, `Scan` replays the journal: any epoch with a `begin` but no
// `commit` is a *torn batch* — the recovery code truncates each touched
// shard's raw file back to the recorded pre-append size, restoring exactly
// the prefix of fully-committed epochs. Single-shard batches never touch
// the journal — with one shard there is no cross-shard state to tear, and
// they keep the unsharded forest's WAL semantics (reopen restores a
// whole-series prefix of the append) — so the hot single-shard ingest
// path pays nothing. The journal is
// checkpointed (reset) whenever the manifest durably records the committed
// epoch floor, bounding its size and the reopen replay.
//
// Durability scope: "synced" below means the protocol calls Sync at the
// right barriers; by default that is a no-op and the guarantees hold for
// process crashes, not power loss — real fdatasync is behind the
// COCONUT_SYNC=1 / SetSyncOnCommit opt-in. See src/store/README.md.
//
// Format (line-oriented text; the header is written atomically via
// tmp+rename by `Reset`, records are appended):
//
//   coconut-store-journal v1
//   begin <epoch> <nslices> <shard>:<pre_raw_bytes>:<count> ... crc:<8hex>
//   commit <epoch> crc:<8hex>
//
// The trailing token is the CRC32C of the record line up to (not including)
// the token's separating space. Scan verifies it when present (a record
// without one still parses, so legacy journals and hand-written test lines
// remain valid) and treats a mismatch as a malformed line.
//
// A crash can tear the final appended line, so `Scan` ignores a malformed
// LAST line (the record it belonged to simply never happened — exactly the
// WAL torn-tail rule); that includes a final line whose CRC does not match,
// which is indistinguishable from a torn append. A malformed interior line
// is real corruption — a bit flip anywhere inside an interior record fails
// its CRC — and is reported as such. Epochs must be strictly increasing and
// a `commit` must match an open `begin`.
#ifndef COCONUT_STORE_JOURNAL_H_
#define COCONUT_STORE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/file.h"

namespace coconut {

/// One shard's slice of an epoch: where its sub-batch lands in the shard's
/// raw file. `pre_raw_bytes` is the raw-file size before the append; the
/// slice occupies [pre_raw_bytes, pre_raw_bytes + count * series_bytes).
struct EpochSlice {
  size_t shard = 0;
  uint64_t pre_raw_bytes = 0;
  uint64_t count = 0;
};

/// One journaled epoch as seen by a recovery scan.
struct EpochRecord {
  uint64_t epoch = 0;
  std::vector<EpochSlice> slices;
  bool committed = false;
};

inline constexpr char kStoreJournalName[] = "JOURNAL";

class CommitJournal {
 public:
  /// True if `store_dir` holds a journal file.
  static bool Exists(const std::string& store_dir);

  /// Atomically (re)creates an empty journal (header only, tmp+rename).
  /// Called after recovery has applied the old records, and at store
  /// creation.
  static Status Reset(const std::string& store_dir);

  /// Opens the journal of `store_dir` for appending. The journal must
  /// already exist (create it with `Reset`).
  static Status Open(const std::string& store_dir,
                     std::unique_ptr<CommitJournal>* out);

  /// Parses the journal into per-epoch records (in epoch order). Tolerates
  /// a torn final line; rejects interior corruption, non-increasing epochs,
  /// and commits without a matching begin.
  static Status Scan(const std::string& store_dir,
                     std::vector<EpochRecord>* records);

  /// Appends (and syncs) the begin record of `epoch`.
  Status AppendBegin(uint64_t epoch, const std::vector<EpochSlice>& slices);

  /// Appends (and syncs) the commit record of `epoch`.
  Status AppendCommit(uint64_t epoch);

  /// Current journal size in bytes (drives size-triggered checkpointing).
  uint64_t size() const { return file_->size(); }

 private:
  explicit CommitJournal(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  /// Frames `body` (no trailing newline) with its CRC token and appends.
  Status AppendRecord(const std::string& body);

  std::unique_ptr<WritableFile> file_;
};

}  // namespace coconut

#endif  // COCONUT_STORE_JOURNAL_H_
