// Backend selection. Resolved once per process, on the first Kernels()
// call: honor a valid COCONUT_SIMD override, otherwise pick the best
// backend the CPU supports (avx2 > neon > scalar). The choice is latched —
// changing the environment variable after the first call has no effect,
// which keeps every hot loop a single indirect call with no per-call
// feature checks.
#include "src/simd/kernels_internal.h"

#include <cstdlib>
#include <cstring>

namespace coconut {
namespace simd {
namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable* Select() {
  const KernelTable* avx2 = CpuHasAvx2Fma() ? Avx2KernelsImpl() : nullptr;
  const KernelTable* neon = NeonKernelsImpl();
  const char* want = std::getenv("COCONUT_SIMD");
  if (want != nullptr && *want != '\0') {
    if (std::strcmp(want, "scalar") == 0) return &ScalarKernels();
    if (std::strcmp(want, "avx2") == 0 && avx2 != nullptr) return avx2;
    if (std::strcmp(want, "neon") == 0 && neon != nullptr) return neon;
    // Unknown or unrunnable override: fall through to auto-detection
    // rather than crashing on an illegal instruction.
  }
  if (avx2 != nullptr) return avx2;
  if (neon != nullptr) return neon;
  return &ScalarKernels();
}

}  // namespace

const KernelTable& Kernels() {
  static const KernelTable* const table = Select();
  return *table;
}

const KernelTable* Avx2Kernels() {
  return CpuHasAvx2Fma() ? Avx2KernelsImpl() : nullptr;
}

const KernelTable* NeonKernels() { return NeonKernelsImpl(); }

}  // namespace simd
}  // namespace coconut
