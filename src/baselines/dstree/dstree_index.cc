#include "src/baselines/dstree/dstree_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

#include "src/core/knn.h"
#include "src/series/distance.h"

namespace coconut {

namespace {

/// Stat of one segment of a series (mean or stddev).
double SegmentStat(const Value* series, size_t begin, size_t end,
                   bool use_mean) {
  const size_t len = end - begin;
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += series[i];
  const double mean = sum / static_cast<double>(len);
  if (use_mean) return mean;
  double sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double d = series[i] - mean;
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(len));
}

}  // namespace

Status DstreeIndex::Create(const DstreeOptions& options,
                           const std::string& storage_path,
                           std::unique_ptr<DstreeIndex>* out) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<DstreeIndex> index(new DstreeIndex());
  index->options_ = options;
  index->storage_path_ = storage_path;
  COCONUT_RETURN_IF_ERROR(
      WritableFile::Create(storage_path, &index->storage_write_));
  COCONUT_RETURN_IF_ERROR(
      RandomAccessFile::Open(storage_path, &index->storage_read_));
  // Root: equal-width initial segmentation.
  index->root_ = index->AllocNode();
  Node& root = index->nodes_[index->root_];
  const size_t seg_len = options.series_length / options.initial_segments;
  for (size_t s = 1; s <= options.initial_segments; ++s) {
    root.seg.push_back(s == options.initial_segments ? options.series_length
                                                     : s * seg_len);
  }
  root.env.resize(root.seg.size());
  index->num_leaves_ = 1;
  *out = std::move(index);
  return Status::OK();
}

int64_t DstreeIndex::AllocNode() {
  nodes_.push_back(Node{});
  return static_cast<int64_t>(nodes_.size()) - 1;
}

Status DstreeIndex::Insert(const Value* series, uint64_t offset) {
  int64_t id = root_;
  std::vector<SegmentStats> stats;
  while (true) {
    Node& n = nodes_[id];
    // Maintain the node envelope so lower bounds stay valid.
    EapcaTransform(series, n.seg, &stats);
    if (!n.env_valid) {
      for (size_t s = 0; s < stats.size(); ++s) n.env[s].InitFrom(stats[s]);
      n.env_valid = true;
    } else {
      for (size_t s = 0; s < stats.size(); ++s) n.env[s].Extend(stats[s]);
    }
    if (n.is_leaf) break;
    const double v =
        SegmentStat(series, n.route_begin, n.route_end, n.split_on_mean);
    id = n.children[v < n.threshold ? 0 : 1];
  }
  return AppendToLeaf(id, series, offset);
}

Status DstreeIndex::AppendToLeaf(int64_t id, const Value* series,
                                 uint64_t offset) {
  const size_t eb = entry_bytes();
  {
    Node& n = nodes_[id];
    const size_t old = n.buffer.size();
    n.buffer.resize(old + eb);
    std::memcpy(n.buffer.data() + old, &offset, 8);
    std::memcpy(n.buffer.data() + old + 8, series,
                options_.series_length * sizeof(Value));
    ++n.total_count;
    ++num_entries_;
    buffered_bytes_ += eb;
  }
  if (nodes_[id].total_count > options_.leaf_capacity) {
    std::vector<uint8_t> entries;
    COCONUT_RETURN_IF_ERROR(ReadLeafEntries(nodes_[id], &entries));
    Node& n = nodes_[id];
    entries.insert(entries.end(), n.buffer.begin(), n.buffer.end());
    buffered_bytes_ -= n.buffer.size();
    n.buffer.clear();
    n.buffer.shrink_to_fit();
    COCONUT_RETURN_IF_ERROR(SplitLeaf(id, std::move(entries)));
  } else if (buffered_bytes_ > options_.memory_budget_bytes) {
    COCONUT_RETURN_IF_ERROR(FlushAll());
  }
  return Status::OK();
}

Status DstreeIndex::FlushAll() {
  const size_t snapshot = nodes_.size();
  for (size_t id = 0; id < snapshot; ++id) {
    if (!nodes_[id].is_leaf || nodes_[id].buffer.empty()) continue;
    COCONUT_RETURN_IF_ERROR(FlushLeaf(static_cast<int64_t>(id)));
  }
  return Status::OK();
}

Status DstreeIndex::FlushLeaf(int64_t id) {
  std::vector<uint8_t> entries;
  COCONUT_RETURN_IF_ERROR(ReadLeafEntries(nodes_[id], &entries));
  Node& n = nodes_[id];
  entries.insert(entries.end(), n.buffer.begin(), n.buffer.end());
  buffered_bytes_ -= n.buffer.size();
  n.buffer.clear();
  n.buffer.shrink_to_fit();
  return WriteLeafEntries(&nodes_[id], entries);
}

Status DstreeIndex::ReadLeafEntries(const Node& node,
                                    std::vector<uint8_t>* out) {
  out->clear();
  const size_t eb = entry_bytes();
  const size_t page_bytes = options_.leaf_capacity * eb;
  std::vector<uint8_t> page(page_bytes);
  uint64_t remaining = node.disk_count;
  for (size_t p = 0; p < node.pages.size() && remaining > 0; ++p) {
    const uint64_t in_page =
        std::min<uint64_t>(remaining, options_.leaf_capacity);
    COCONUT_RETURN_IF_ERROR(storage_read_->Read(
        static_cast<uint64_t>(node.pages[p]) * page_bytes,
        in_page * eb, page.data()));
    out->insert(out->end(), page.data(), page.data() + in_page * eb);
    remaining -= in_page;
  }
  return Status::OK();
}

Status DstreeIndex::WriteLeafEntries(Node* node,
                                     const std::vector<uint8_t>& entries) {
  const size_t eb = entry_bytes();
  const size_t page_bytes = options_.leaf_capacity * eb;
  const uint64_t count = entries.size() / eb;
  const size_t pages_needed = static_cast<size_t>(std::max<uint64_t>(
      1, (count + options_.leaf_capacity - 1) / options_.leaf_capacity));
  while (node->pages.size() < pages_needed) {
    node->pages.push_back(next_page_++);
  }
  std::vector<uint8_t> page(page_bytes, 0);
  uint64_t written = 0;
  for (size_t p = 0; p < pages_needed; ++p) {
    const uint64_t in_page =
        std::min<uint64_t>(count - written, options_.leaf_capacity);
    // Only the occupied prefix of each page is written; allocation stays
    // page-granular so sparse leaves still amplify space.
    COCONUT_RETURN_IF_ERROR(storage_write_->WriteAt(
        static_cast<uint64_t>(node->pages[p]) * page_bytes,
        entries.data() + written * eb, in_page * eb));
    written += in_page;
  }
  node->disk_count = count;
  return Status::OK();
}

Status DstreeIndex::SplitLeaf(int64_t id, std::vector<uint8_t> entries) {
  const size_t eb = entry_bytes();
  const uint64_t count = entries.size() / eb;
  const Segmentation seg = nodes_[id].seg;  // copy: nodes_ may reallocate

  // Evaluate horizontal-split candidates: (segment, mean|stddev) scored by
  // length-weighted squared value range (the wider the range, the more the
  // envelope shrinks after splitting).
  struct Candidate {
    double score = -1.0;
    int segment = -1;
    bool use_mean = true;
    bool vertical = false;
    size_t v_point = 0;  // refinement point for vertical splits
  };
  Candidate best;
  std::vector<double> values(count);
  auto eval = [&](size_t begin, size_t end, bool use_mean, double* out_range,
                  double* out_median) {
    for (uint64_t i = 0; i < count; ++i) {
      const Value* series =
          reinterpret_cast<const Value*>(entries.data() + i * eb + 8);
      values[i] = SegmentStat(series, begin, end, use_mean);
    }
    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    *out_range = *mx - *mn;
    const double min_value = *mn;
    std::nth_element(values.begin(), values.begin() + count / 2,
                     values.end());
    double median = values[count / 2];
    if (median <= min_value && *out_range > 0.0) {
      // Everything below the median would be empty; route the minima left
      // by using the smallest value strictly above the minimum.
      double successor = std::numeric_limits<double>::infinity();
      for (uint64_t i = 0; i < count; ++i) {
        if (values[i] > min_value) successor = std::min(successor, values[i]);
      }
      median = successor;
    }
    *out_median = median;
  };

  double best_threshold = 0.0;
  size_t begin = 0;
  for (size_t s = 0; s < seg.size(); ++s) {
    const size_t end = seg[s];
    const double len = static_cast<double>(end - begin);
    for (bool use_mean : {true, false}) {
      double range, median;
      eval(begin, end, use_mean, &range, &median);
      const double score = len * range * range;
      if (score > best.score && range > 0.0) {
        best = {score, static_cast<int>(s), use_mean, false, 0};
        best_threshold = median;
      }
      // Vertical candidate: refine this segment at its midpoint and split
      // on the more discriminative half (paper's v-split, simplified).
      const size_t mid = begin + (end - begin) / 2;
      if (mid - begin >= options_.min_segment_length &&
          end - mid >= options_.min_segment_length) {
        for (const auto& [hb, he] : {std::pair{begin, mid},
                                     std::pair{mid, end}}) {
          double hrange, hmedian;
          eval(hb, he, use_mean, &hrange, &hmedian);
          const double hscore =
              static_cast<double>(he - hb) * hrange * hrange;
          if (hscore > best.score && hrange > 0.0) {
            best = {hscore, static_cast<int>(s), use_mean, true, mid};
            best_threshold = hmedian;
          }
        }
      }
    }
    begin = end;
  }
  if (best.segment < 0) {
    // All series identical on every candidate statistic: oversized leaf.
    return WriteLeafEntries(&nodes_[id], entries);
  }

  // Child segmentation: refined for vertical splits.
  Segmentation child_seg = seg;
  int split_segment = best.segment;
  if (best.vertical) {
    child_seg.insert(child_seg.begin() + best.segment, best.v_point);
    // After insertion, the candidate halves are segments `segment` (first
    // half) and `segment + 1` (second half); the threshold was computed on
    // the half starting at v_point only if that half won — recompute which.
    // The winning half is identified by the stored v_point: first half ends
    // at v_point, second half starts there. The eval loop assigned
    // best_threshold from the winning half; route on that half.
    const size_t seg_begin =
        best.segment == 0 ? 0 : seg[best.segment - 1];
    // Determine which half won by re-evaluating both (cheap).
    double r1, m1, r2, m2;
    eval(seg_begin, best.v_point, best.use_mean, &r1, &m1);
    eval(best.v_point, seg[best.segment], best.use_mean, &r2, &m2);
    const double s1 = static_cast<double>(best.v_point - seg_begin) * r1 * r1;
    const double s2 =
        static_cast<double>(seg[best.segment] - best.v_point) * r2 * r2;
    split_segment = best.segment + (s2 > s1 ? 1 : 0);
  }

  const size_t split_begin =
      split_segment == 0 ? 0 : child_seg[split_segment - 1];
  const size_t split_end = child_seg[split_segment];

  const int64_t left = AllocNode();
  const int64_t right = AllocNode();
  for (int64_t child : {left, right}) {
    Node& c = nodes_[child];
    c.seg = child_seg;
    c.env.resize(child_seg.size());
  }
  {
    Node& parent = nodes_[id];
    parent.is_leaf = false;
    parent.route_begin = split_begin;
    parent.route_end = split_end;
    parent.split_on_mean = best.use_mean;
    parent.threshold = best_threshold;
    parent.children[0] = left;
    parent.children[1] = right;
    // Left child inherits the parent's pages for rewriting.
    nodes_[left].pages = std::move(parent.pages);
    parent.pages.clear();
    parent.disk_count = 0;
    num_leaves_ += 1;
  }

  // Partition entries, extending the child envelopes.
  std::vector<uint8_t> left_entries, right_entries;
  std::vector<SegmentStats> stats;
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t* e = entries.data() + i * eb;
    const Value* series = reinterpret_cast<const Value*>(e + 8);
    const double v =
        SegmentStat(series, split_begin, split_end, best.use_mean);
    const int64_t child = v < best_threshold ? left : right;
    std::vector<uint8_t>& dst =
        (child == left) ? left_entries : right_entries;
    dst.insert(dst.end(), e, e + eb);
    Node& c = nodes_[child];
    EapcaTransform(series, c.seg, &stats);
    if (!c.env_valid) {
      for (size_t s = 0; s < stats.size(); ++s) c.env[s].InitFrom(stats[s]);
      c.env_valid = true;
    } else {
      for (size_t s = 0; s < stats.size(); ++s) c.env[s].Extend(stats[s]);
    }
    ++c.total_count;
  }
  entries.clear();
  entries.shrink_to_fit();

  // Median split: both sides are non-empty unless all values tie, which
  // range > 0 excludes... except when the median equals the minimum; guard:
  if (left_entries.empty() || right_entries.empty()) {
    // Degenerate split (should not happen given the threshold fix above):
    // revert to an oversized leaf at the parent, reclaiming the pages that
    // were handed to the left child.
    std::vector<uint8_t>& full =
        left_entries.empty() ? right_entries : left_entries;
    std::vector<int64_t> pages = std::move(nodes_[left].pages);
    Node& parent = nodes_[id];
    parent.is_leaf = true;
    parent.pages = std::move(pages);
    parent.children[0] = parent.children[1] = -1;
    num_leaves_ -= 1;
    nodes_.pop_back();
    nodes_.pop_back();
    return WriteLeafEntries(&nodes_[id], full);
  }

  if (left_entries.size() / eb > options_.leaf_capacity) {
    COCONUT_RETURN_IF_ERROR(SplitLeaf(left, std::move(left_entries)));
  } else {
    COCONUT_RETURN_IF_ERROR(WriteLeafEntries(&nodes_[left], left_entries));
  }
  if (right_entries.size() / eb > options_.leaf_capacity) {
    COCONUT_RETURN_IF_ERROR(SplitLeaf(right, std::move(right_entries)));
  } else {
    COCONUT_RETURN_IF_ERROR(WriteLeafEntries(&nodes_[right], right_entries));
  }
  return Status::OK();
}

Status DstreeIndex::LeafTrueDistances(const Node& node, const Value* query,
                                      KnnCollector* knn, uint64_t* visited,
                                      uint64_t* pages_read) {
  std::vector<uint8_t> entries;
  COCONUT_RETURN_IF_ERROR(ReadLeafEntries(node, &entries));
  *pages_read += node.pages.size();
  entries.insert(entries.end(), node.buffer.begin(), node.buffer.end());
  const size_t eb = entry_bytes();
  const size_t n = options_.series_length;
  const uint64_t count = entries.size() / eb;
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t* e = entries.data() + i * eb;
    const Value* series = reinterpret_cast<const Value*>(e + 8);
    const double d =
        SquaredEuclideanEarlyAbandon(series, query, n, knn->bound_sq());
    ++*visited;
    uint64_t offset;
    std::memcpy(&offset, e, 8);
    knn->Offer(offset, d);
  }
  return Status::OK();
}

Status DstreeIndex::ApproxSearch(const Value* query, SearchResult* result,
                                 size_t k) {
  if (num_entries_ == 0) return Status::NotFound("empty index");
  int64_t id = root_;
  while (!nodes_[id].is_leaf) {
    const Node& n = nodes_[id];
    const double v =
        SegmentStat(query, n.route_begin, n.route_end, n.split_on_mean);
    id = n.children[v < n.threshold ? 0 : 1];
  }
  KnnCollector knn(k);
  uint64_t visited = 0;
  uint64_t pages = 0;
  COCONUT_RETURN_IF_ERROR(LeafTrueDistances(nodes_[id], query, &knn,
                                            &visited, &pages));
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = pages;
  return Status::OK();
}

Status DstreeIndex::ExactSearch(const Value* query, SearchResult* result,
                                size_t k) {
  SearchResult approx;
  COCONUT_RETURN_IF_ERROR(ApproxSearch(query, &approx, k));
  KnnCollector knn(k);
  knn.Seed(approx);
  uint64_t visited = approx.visited_records;
  uint64_t pages = approx.leaves_read;

  std::vector<SegmentStats> query_stats;
  using Item = std::pair<double, int64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.push({0.0, root_});
  while (!pq.empty()) {
    const auto [lb, id] = pq.top();
    pq.pop();
    if (lb >= knn.bound_sq()) break;
    const Node& n = nodes_[id];
    if (n.is_leaf) {
      COCONUT_RETURN_IF_ERROR(LeafTrueDistances(n, query, &knn, &visited,
                                                &pages));
      continue;
    }
    for (int64_t child : n.children) {
      const Node& c = nodes_[child];
      if (!c.env_valid) continue;  // never received a series
      EapcaTransform(query, c.seg, &query_stats);
      pq.push({EapcaLowerBoundSq(query_stats, c.env, c.seg), child});
    }
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = pages;
  return Status::OK();
}

double DstreeIndex::AvgLeafFill() const {
  if (next_page_ == 0) return 0.0;
  return static_cast<double>(num_entries_) /
         (static_cast<double>(next_page_) *
          static_cast<double>(options_.leaf_capacity));
}

uint64_t DstreeIndex::StorageBytes() const {
  // Disk-block-granular accounting, mirroring Isax2Index::StorageBytes.
  constexpr uint64_t kBlock = 4096;
  uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (!n.is_leaf) continue;
    const uint64_t occupied = n.total_count * entry_bytes();
    total += std::max<uint64_t>(1, (occupied + kBlock - 1) / kBlock) * kBlock;
  }
  return total;
}

size_t DstreeIndex::MaxSegments() const {
  size_t max_segments = 0;
  for (const Node& n : nodes_) {
    max_segments = std::max(max_segments, n.seg.size());
  }
  return max_segments;
}

}  // namespace coconut
