// Figure 7: value histograms for all dataset families. The paper shows that
// randomwalk and seismic values are near-Gaussian while astronomy is
// slightly skewed; this harness prints the histograms and summary moments so
// the shapes can be compared directly.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_util.h"

namespace coconut {
namespace bench {
namespace {

void Run() {
  Banner("Figure 7", "value histograms for all datasets used");
  const size_t length = 256;
  const size_t series_count = 400 * Scale();
  const int buckets = 21;
  const double lo = -5.0, hi = 5.0;

  for (DatasetKind kind : {DatasetKind::kRandomWalk, DatasetKind::kSeismic,
                           DatasetKind::kAstronomy}) {
    auto gen = MakeGenerator(kind, length, 7);
    std::vector<uint64_t> hist(buckets, 0);
    uint64_t total = 0;
    double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
    Series s(length);
    for (size_t i = 0; i < series_count; ++i) {
      gen->Next(s.data());
      for (Value v : s) {
        const double x = v;
        int b = static_cast<int>((x - lo) / (hi - lo) * buckets);
        b = std::max(0, std::min(buckets - 1, b));
        ++hist[b];
        ++total;
        sum += x;
        sum2 += x * x;
        sum3 += x * x * x;
      }
    }
    const double mean = sum / total;
    const double var = sum2 / total - mean * mean;
    const double skew =
        (sum3 / total - 3 * mean * var - mean * mean * mean) /
        std::pow(var, 1.5);
    std::printf("\n%s (n=%llu values): mean=%.3f stddev=%.3f skewness=%.3f\n",
                DatasetKindName(kind), static_cast<unsigned long long>(total),
                mean, std::sqrt(var), skew);
    const uint64_t peak = *std::max_element(hist.begin(), hist.end());
    for (int b = 0; b < buckets; ++b) {
      const double center = lo + (b + 0.5) * (hi - lo) / buckets;
      const int bars =
          static_cast<int>(50.0 * hist[b] / std::max<uint64_t>(1, peak));
      std::printf("%6.2f | %-50s %.4f\n", center,
                  std::string(bars, '#').c_str(),
                  static_cast<double>(hist[b]) / total);
    }
  }
  std::printf(
      "\nExpectation (paper Fig 7): randomwalk and seismic near-Gaussian;\n"
      "astronomy slightly skewed (positive skewness above).\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
