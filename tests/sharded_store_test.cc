// ShardedStore: manifest round-trip and crash recovery, key-space routing,
// cross-shard k-NN equivalence against a single unsharded forest, and a
// multi-shard reader/writer stress test (a ThreadSanitizer target, see
// .github/workflows/ci.yml).
#include "src/store/sharded_store.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/coconut_forest.h"
#include "src/exec/query_engine.h"
#include "src/store/manifest.h"
#include "src/summary/invsax.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

constexpr size_t kSeriesLen = 64;

StoreOptions SmallStore(const ScratchDir& dir, size_t num_shards) {
  StoreOptions opts;
  opts.forest.tree.summary.series_length = kSeriesLen;
  opts.forest.tree.summary.segments = 16;
  opts.forest.tree.leaf_capacity = 64;
  opts.forest.tree.tmp_dir = dir.path();
  opts.forest.memtable_series = 100;
  opts.forest.max_runs = 3;
  opts.num_shards = num_shards;
  return opts;
}

std::vector<Series> MakeSeries(size_t count, uint64_t seed) {
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, seed);
  std::vector<Series> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(gen->NextSeries());
  return out;
}

/// Brute-force k-NN distances (ascending) over the first `count` series.
std::vector<double> OracleDistances(const std::vector<Series>& data,
                                    size_t count, const Series& query,
                                    size_t k) {
  std::vector<double> dists;
  dists.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < kSeriesLen; ++j) {
      const double d = static_cast<double>(data[i][j]) -
                       static_cast<double>(query[j]);
      sum += d * d;
    }
    dists.push_back(std::sqrt(sum));
  }
  std::sort(dists.begin(), dists.end());
  if (dists.size() > k) dists.resize(k);
  return dists;
}

TEST(ShardedStore, OffsetEncodingRoundTrips) {
  for (const size_t shard : {size_t{0}, size_t{1}, size_t{17}}) {
    for (const uint64_t local : {uint64_t{0}, uint64_t{256}, uint64_t{1} << 40}) {
      const uint64_t enc = ShardedStore::EncodeOffset(shard, local);
      size_t s;
      uint64_t l;
      ShardedStore::DecodeOffset(enc, &s, &l);
      EXPECT_EQ(s, shard);
      EXPECT_EQ(l, local);
    }
  }
  // Shard 0 encodes to the plain local offset (forest compatibility).
  EXPECT_EQ(ShardedStore::EncodeOffset(0, 4096u), 4096u);
}

TEST(ShardedStore, RoutingIsAPartitionOfTheKeySpace) {
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
    ScratchDir dir;
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(dir.File("store"), SmallStore(dir, shards),
                                 &store));
    ASSERT_EQ(store->num_shards(), shards);
    const StoreManifest& m = store->manifest();
    EXPECT_EQ(m.shards[0].lower_bound, ZKey());
    EXPECT_EQ(store->ShardForKey(ZKey()), 0u);
    EXPECT_EQ(store->ShardForKey(ZKey::Max()), shards - 1);
    for (size_t i = 0; i < shards; ++i) {
      EXPECT_EQ(store->ShardForKey(m.shards[i].lower_bound), i);
    }
    // Real keys agree with the boundary definition (largest lower <= key).
    const SummaryOptions summary = SmallStore(dir, shards).forest.tree.summary;
    for (const Series& s : MakeSeries(50, 1000 + shards)) {
      const ZKey key = InvSaxFromSeries(s.data(), summary);
      size_t expected = 0;
      for (size_t i = 0; i < shards; ++i) {
        if (m.shards[i].lower_bound <= key) expected = i;
      }
      EXPECT_EQ(store->ShardForKey(key), expected);
    }
  }
}

TEST(ShardedStore, CrossShardKnnMatchesUnshardedForest) {
  ScratchDir dir;
  const std::vector<Series> data = MakeSeries(800, 91);
  const std::vector<Series> queries = MakeSeries(10, 92);

  // Reference: one unsharded forest over the same data.
  ForestOptions fopts = SmallStore(dir, 1).forest;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                fopts, &forest));
  ASSERT_OK(forest->InsertBatch(data));

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(
        dir.File("store-" + std::to_string(shards)),
        SmallStore(dir, shards), &store));
    ASSERT_OK(store->InsertBatch(data));
    EXPECT_EQ(store->num_entries(), data.size());

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const size_t k = 1 + qi % 5;
      SearchResult from_forest, from_store;
      ASSERT_OK(forest->ExactSearch(queries[qi].data(), &from_forest, k));
      ASSERT_OK(store->ExactSearch(queries[qi].data(), &from_store, k));
      ASSERT_EQ(from_store.neighbors.size(), from_forest.neighbors.size());
      for (size_t j = 0; j < from_forest.neighbors.size(); ++j) {
        EXPECT_NEAR(from_store.neighbors[j].distance,
                    from_forest.neighbors[j].distance, 1e-9)
            << "shards=" << shards << " query=" << qi << " rank=" << j;
      }
      // Approximate store search is an upper bound of the exact answer.
      SearchResult approx;
      ASSERT_OK(store->ApproxSearch(queries[qi].data(), 1, &approx, k));
      EXPECT_GE(approx.distance + 1e-6, from_store.distance);
    }
  }
}

TEST(ShardedStore, QueryEngineBatchMatchesSerialStoreSearch) {
  ScratchDir dir;
  const std::vector<Series> data = MakeSeries(600, 93);
  const std::vector<Series> queries = MakeSeries(24, 94);
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(dir.File("store"), SmallStore(dir, 4), &store));
  ASSERT_OK(store->InsertBatch(data));

  ThreadPool pool(4);
  QueryEngine engine(&pool);
  const ShardedStore::Snapshot snap = store->GetSnapshot();
  for (const auto mode :
       {QuerySpec::Mode::kExact, QuerySpec::Mode::kApprox}) {
    QuerySpec spec;
    spec.mode = mode;
    spec.k = 3;
    spec.approx_leaves = 2;
    std::vector<SearchResult> batch;
    ASSERT_OK(engine.ExecuteBatch(*store, snap, queries, spec, &batch));
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      SearchResult serial;
      if (mode == QuerySpec::Mode::kExact) {
        ASSERT_OK(store->ExactSearch(snap, queries[i].data(), &serial,
                                     spec.k));
      } else {
        ASSERT_OK(store->ApproxSearch(snap, queries[i].data(),
                                      spec.approx_leaves, &serial, spec.k));
      }
      ASSERT_EQ(batch[i].neighbors.size(), serial.neighbors.size());
      for (size_t j = 0; j < serial.neighbors.size(); ++j) {
        EXPECT_EQ(batch[i].neighbors[j].offset, serial.neighbors[j].offset);
        EXPECT_EQ(batch[i].neighbors[j].distance,
                  serial.neighbors[j].distance);
      }
    }
  }
}

TEST(ShardedStore, ManifestRoundTripSurvivesCrashReopen) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  const std::vector<Series> data = MakeSeries(500, 95);
  const std::vector<Series> queries = MakeSeries(8, 96);

  std::vector<SearchResult> before(queries.size());
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
    ASSERT_OK(store->InsertBatch(data));
    ASSERT_OK(store->Flush());  // re-commits the manifest with entry counts
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_OK(store->ExactSearch(queries[i].data(), &before[i], 3));
    }
    // The store object goes out of scope with no clean-shutdown step:
    // reopening is always the crash-recovery path.
  }

  // Harden the simulated crash: wipe every derived file (runs + sidecars),
  // keeping only each shard's raw dataset and the committed manifest.
  // Recovery must rebuild the runs from the raw files alone.
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("run-", 0) == 0) {
      std::filesystem::remove(entry.path());
    }
  }

  // Reopen with a DIFFERENT requested shard count: the manifest must win,
  // or routing would no longer match the stored data.
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 7), &store));
  EXPECT_EQ(store->num_shards(), 3u);
  EXPECT_EQ(store->num_entries(), data.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SearchResult after;
    ASSERT_OK(store->ExactSearch(queries[i].data(), &after, 3));
    ASSERT_EQ(after.neighbors.size(), before[i].neighbors.size());
    for (size_t j = 0; j < before[i].neighbors.size(); ++j) {
      EXPECT_EQ(after.neighbors[j].offset, before[i].neighbors[j].offset);
      EXPECT_NEAR(after.neighbors[j].distance,
                  before[i].neighbors[j].distance, 1e-9);
    }
  }

  // And the data keeps flowing after recovery.
  ASSERT_OK(store->InsertBatch(MakeSeries(100, 97)));
  EXPECT_EQ(store->num_entries(), data.size() + 100);
}

TEST(ShardedStore, RejectsCorruptManifestAndMismatchedOptions) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));
  }
  // Mismatched series_length is refused (the store would mis-route).
  {
    StoreOptions opts = SmallStore(dir, 2);
    opts.forest.tree.summary.series_length = 128;
    opts.forest.tree.summary.segments = 16;
    std::unique_ptr<ShardedStore> store;
    EXPECT_FALSE(ShardedStore::Open(root, opts, &store).ok());
  }
  // A torn/garbage manifest is refused, not silently repartitioned.
  {
    std::ofstream(JoinPath(root, kStoreManifestName)) << "garbage\n";
    std::unique_ptr<ShardedStore> store;
    EXPECT_FALSE(ShardedStore::Open(root, SmallStore(dir, 2), &store).ok());
  }
  // Shard data with a missing manifest is a damaged store, not a new one.
  {
    std::filesystem::remove(JoinPath(root, kStoreManifestName));
    std::unique_ptr<ShardedStore> store;
    const Status st = ShardedStore::Open(root, SmallStore(dir, 2), &store);
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  }
}

TEST(ShardedStoreConcurrency, ReadersAndEngineStayConsistentUnderIngest) {
  ScratchDir dir;
  StoreOptions opts = SmallStore(dir, 4);
  opts.forest.memtable_series = 60;  // frequent flushes
  opts.forest.max_runs = 2;          // frequent compactions
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(dir.File("store"), opts, &store));

  const size_t kTotal = 800;
  const std::vector<Series> data = MakeSeries(kTotal, 4242);
  const std::vector<Series> queries = MakeSeries(12, 4343);

  std::atomic<bool> done{false};
  std::vector<std::string> failures;
  std::mutex failures_mu;
  auto record_failure = [&](const std::string& msg) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(msg);
  };

  // Writer: batches split across shards and inserted concurrently; every
  // few waves force a store-wide flush or two-level parallel compaction.
  std::thread writer([&]() {
    const size_t kBatch = 40;
    for (size_t base = 0; base < kTotal; base += kBatch) {
      std::vector<Series> batch(
          data.begin() + base,
          data.begin() + std::min(kTotal, base + kBatch));
      Status st = store->InsertBatch(batch);
      if (!st.ok()) {
        record_failure("InsertBatch: " + st.ToString());
        break;
      }
      if ((base / kBatch) % 5 == 1) st = store->Flush();
      if (st.ok() && (base / kBatch) % 7 == 2) st = store->CompactAll();
      if (!st.ok()) {
        record_failure("Flush/CompactAll: " + st.ToString());
        break;
      }
    }
    done.store(true);
  });

  // Readers: store snapshots must be internally consistent at all times —
  // sorted neighbor lists, approx upper-bounding exact, and the engine's
  // parallel cross-shard fan-out agreeing bit-for-bit with the serial
  // store search on the same snapshot.
  std::atomic<int> reader_checks{0};
  auto reader_fn = [&](size_t seed) {
    ThreadPool pool(2);
    QueryEngine engine(&pool);
    size_t iter = seed;
    while (!done.load()) {
      const ShardedStore::Snapshot snap = store->GetSnapshot();
      const uint64_t visible = snap.num_entries();
      if (visible == 0) continue;
      if (visible > kTotal) {
        record_failure("snapshot exposes more entries than inserted");
        return;
      }
      const Series& query = queries[iter++ % queries.size()];
      const size_t k = 1 + iter % 3;

      SearchResult exact;
      Status st = store->ExactSearch(snap, query.data(), &exact, k);
      if (!st.ok()) {
        record_failure("ExactSearch: " + st.ToString());
        return;
      }
      if (exact.neighbors.size() !=
          std::min<uint64_t>(k, visible)) {
        record_failure("unexpected exact neighbor count");
        return;
      }
      for (size_t j = 1; j < exact.neighbors.size(); ++j) {
        if (exact.neighbors[j].distance + 1e-12 <
            exact.neighbors[j - 1].distance) {
          record_failure("exact neighbors not ascending");
          return;
        }
      }
      SearchResult approx;
      st = store->ApproxSearch(snap, query.data(), 1, &approx, k);
      if (!st.ok()) {
        record_failure("ApproxSearch: " + st.ToString());
        return;
      }
      if (approx.distance + 1e-6 < exact.distance) {
        record_failure("approx beat exact on the same snapshot");
        return;
      }
      std::vector<SearchResult> batch;
      QuerySpec spec;
      spec.mode = QuerySpec::Mode::kExact;
      spec.k = k;
      st = engine.ExecuteBatch(*store, snap, {query}, spec, &batch);
      if (!st.ok()) {
        record_failure("ExecuteBatch: " + st.ToString());
        return;
      }
      if (batch[0].neighbors.size() != exact.neighbors.size()) {
        record_failure("engine/serial neighbor count mismatch");
        return;
      }
      for (size_t j = 0; j < exact.neighbors.size(); ++j) {
        if (batch[0].neighbors[j].offset != exact.neighbors[j].offset ||
            batch[0].neighbors[j].distance != exact.neighbors[j].distance) {
          record_failure("engine/serial neighbor mismatch");
          return;
        }
      }
      reader_checks.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 2; ++r) readers.emplace_back(reader_fn, r + 1);

  writer.join();
  for (auto& t : readers) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_GT(reader_checks.load(), 0);

  // Quiescent state: everything visible and exact against the oracle.
  EXPECT_EQ(store->num_entries(), kTotal);
  for (size_t qi = 0; qi < 4; ++qi) {
    SearchResult final_result;
    ASSERT_OK(store->ExactSearch(queries[qi].data(), &final_result, 3));
    const std::vector<double> oracle =
        OracleDistances(data, kTotal, queries[qi], 3);
    ASSERT_EQ(final_result.neighbors.size(), oracle.size());
    for (size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_NEAR(final_result.neighbors[j].distance, oracle[j], 1e-4);
    }
  }
}

}  // namespace
}  // namespace coconut
