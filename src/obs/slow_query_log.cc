#include "src/obs/slow_query_log.h"

#include <algorithm>
#include <cstdlib>

#include "src/obs/trace.h"

namespace coconut {

namespace {

/// Same per-thread stripe selection idiom as Counter::StripeIndex, so
/// concurrent recorders land on distinct mutexes in steady state.
size_t StripeIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % SlowQueryLog::kStripes;
  return stripe;
}

void AppendEntryJson(std::string* out, const SlowQueryEntry& e) {
  auto field = [out](const char* k, uint64_t v, bool comma = true) {
    out->append("\"");
    out->append(k);
    out->append("\":");
    out->append(std::to_string(v));
    if (comma) out->append(",");
  };
  out->append("{");
  field("seq", e.seq);
  field("ts_ns", e.ts_ns);
  out->append(e.exact ? "\"mode\":\"exact\"," : "\"mode\":\"approx\",");
  field("total_ns", e.trace.total_ns);
  field("cpu_ns", e.trace.cpu_ns);
  field("route_ns", e.trace.route_ns);
  field("approx_ns", e.trace.approx_ns);
  field("refine_ns", e.trace.refine_ns);
  field("merge_ns", e.trace.merge_ns);
  field("leaves_visited", e.trace.leaves_visited);
  field("records_fetched", e.trace.records_fetched);
  field("pruned_mindist", e.trace.pruned_mindist);
  field("memtable_scanned", e.trace.memtable_scanned, /*comma=*/false);
  out->append("}");
}

void AppendEntriesJson(std::string* out,
                       const std::vector<SlowQueryEntry>& entries) {
  out->append("[");
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out->append(",");
    AppendEntryJson(out, entries[i]);
  }
  out->append("]");
}

}  // namespace

SlowQueryLog::SlowQueryLog(uint64_t threshold_ns, size_t recent_per_stripe,
                           size_t slow_per_stripe)
    : threshold_ns_(threshold_ns) {
  for (Stripe& s : stripes_) {
    // The lock is not strictly needed before the object is shared, but the
    // analysis has no "still constructing" notion for members of array
    // elements, and an uncontended acquire costs nothing here.
    MutexLock lock(&s.mu);
    s.recent.slots.resize(std::max<size_t>(recent_per_stripe, 1));
    s.slow.slots.resize(std::max<size_t>(slow_per_stripe, 1));
  }
}

SlowQueryLog& SlowQueryLog::Default() {
  static SlowQueryLog* log = []() {
    uint64_t threshold_ms = 100;
    if (const char* env = std::getenv("COCONUT_SLOW_QUERY_MS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env) threshold_ms = v;
    }
    return new SlowQueryLog(threshold_ms * 1'000'000ull);
  }();
  return *log;
}

void SlowQueryLog::Record(const QueryTrace& trace, bool exact) {
  SlowQueryEntry e;
  e.trace = trace;
  e.exact = exact;
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  e.ts_ns = Tracer::NowNanos();
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
  const bool slow = trace.total_ns >= threshold_ns();
  Stripe& s = stripes_[StripeIndex()];
  MutexLock lock(&s.mu);
  s.recent.Push(e);
  if (slow) s.slow.Push(e);
}

std::vector<SlowQueryEntry> SlowQueryLog::SnapshotEntries(
    bool slow_only) const {
  std::vector<SlowQueryEntry> out;
  for (const Stripe& s : stripes_) {
    MutexLock lock(&s.mu);
    const Ring& ring = slow_only ? s.slow : s.recent;
    const uint64_t n =
        std::min<uint64_t>(ring.head, ring.slots.size());
    for (uint64_t i = ring.head - n; i < ring.head; ++i) {
      out.push_back(ring.slots[i % ring.slots.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              return a.seq > b.seq;  // newest first
            });
  return out;
}

std::string SlowQueryLog::ToJson() const {
  std::string out;
  out.reserve(4096);
  out.append("{\"threshold_ns\":");
  out.append(std::to_string(threshold_ns()));
  out.append(",\"total_recorded\":");
  out.append(
      std::to_string(total_recorded_.load(std::memory_order_relaxed)));
  out.append(",\"slow\":");
  AppendEntriesJson(&out, SnapshotEntries(/*slow_only=*/true));
  out.append(",\"recent\":");
  AppendEntriesJson(&out, SnapshotEntries(/*slow_only=*/false));
  out.append("}");
  return out;
}

}  // namespace coconut
