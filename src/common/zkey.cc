#include "src/common/zkey.h"

#include <cstdio>

namespace coconut {

std::string ZKey::ToHex() const {
  std::string out;
  out.reserve(kBytes * 2);
  char buf[17];
  for (size_t i = 0; i < kWords; ++i) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(words_[i]));
    out += buf;
  }
  return out;
}

}  // namespace coconut
