// Wall-clock stopwatch used by the benchmark harnesses.
#ifndef COCONUT_COMMON_TIMER_H_
#define COCONUT_COMMON_TIMER_H_

#include <chrono>

namespace coconut {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace coconut

#endif  // COCONUT_COMMON_TIMER_H_
