// Series substrate: z-normalization, distances (early abandoning), the
// dataset generators (statistical shape), and dataset file round-trips.
#include <cmath>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/series/distance.h"
#include "src/series/znorm.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::MakeDatasetFile;
using testing::ScratchDir;

TEST(ZNorm, ProducesZeroMeanUnitVariance) {
  Rng rng(1);
  std::vector<Value> v(256);
  for (auto& x : v) x = static_cast<Value>(5.0 + 3.0 * rng.Gaussian());
  ZNormalize(v.data(), v.size());
  EXPECT_NEAR(Mean(v.data(), v.size()), 0.0, 1e-5);
  EXPECT_NEAR(StdDev(v.data(), v.size()), 1.0, 1e-4);
}

TEST(ZNorm, ConstantSeriesBecomesZeros) {
  std::vector<Value> v(64, 42.0f);
  ZNormalize(v.data(), v.size());
  for (Value x : v) EXPECT_EQ(x, 0.0f);
}

TEST(Distance, MatchesManualComputation) {
  const std::vector<Value> a = {1, 2, 3};
  const std::vector<Value> b = {4, 0, 3};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a.data(), b.data(), 3), 9.0 + 4.0 + 0.0);
  EXPECT_DOUBLE_EQ(Euclidean(a.data(), b.data(), 3), std::sqrt(13.0));
}

TEST(Distance, EarlyAbandonNeverUnderestimatesDecision) {
  // Early abandoning may return a partial sum, but only when that partial
  // already proves the distance exceeds the bound.
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> a(128), b(128);
    for (size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<Value>(rng.Gaussian());
      b[i] = static_cast<Value>(rng.Gaussian());
    }
    const double full = SquaredEuclidean(a.data(), b.data(), 128);
    const double bound = full * rng.Uniform() * 2;  // below or above
    const double got =
        SquaredEuclideanEarlyAbandon(a.data(), b.data(), 128, bound);
    if (got < bound) {
      EXPECT_NEAR(got, full, 1e-9) << "non-abandoned result must be exact";
    } else {
      EXPECT_LE(got, full + 1e-9) << "partial sums cannot exceed the total";
    }
  }
}

class GeneratorShapeTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorShapeTest, OutputIsZNormalized) {
  auto gen = MakeGenerator(GetParam(), 256, 17);
  for (int i = 0; i < 20; ++i) {
    Series s = gen->NextSeries();
    EXPECT_NEAR(Mean(s.data(), s.size()), 0.0, 1e-4);
    EXPECT_NEAR(StdDev(s.data(), s.size()), 1.0, 1e-3);
  }
}

TEST_P(GeneratorShapeTest, DeterministicForSameSeed) {
  auto g1 = MakeGenerator(GetParam(), 128, 99);
  auto g2 = MakeGenerator(GetParam(), 128, 99);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(g1->NextSeries(), g2->NextSeries());
  }
}

TEST_P(GeneratorShapeTest, DifferentSeedsDiffer) {
  auto g1 = MakeGenerator(GetParam(), 128, 1);
  auto g2 = MakeGenerator(GetParam(), 128, 2);
  EXPECT_NE(g1->NextSeries(), g2->NextSeries());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorShapeTest,
                         ::testing::Values(DatasetKind::kRandomWalk,
                                           DatasetKind::kSeismic,
                                           DatasetKind::kAstronomy),
                         [](const auto& info) {
                           return DatasetKindName(info.param);
                         });

TEST(Generators, SlidingWindowsOverlap) {
  // Consecutive seismic windows slide by 4 samples, so they should be far
  // more similar to each other than to a distant window.
  SeismicGenerator gen(128, 5, /*window_step=*/4);
  Series a = gen.NextSeries();
  Series b = gen.NextSeries();
  Series far;
  for (int i = 0; i < 200; ++i) far = gen.NextSeries();
  const double near_d = SquaredEuclidean(a.data(), b.data(), 128);
  const double far_d = SquaredEuclidean(a.data(), far.data(), 128);
  EXPECT_LT(near_d, far_d);
}

TEST(Generators, AstronomySkewIsPositive) {
  auto gen = MakeGenerator(DatasetKind::kAstronomy, 256, 23);
  double sum3 = 0.0;
  size_t n = 0;
  for (int i = 0; i < 200; ++i) {
    Series s = gen->NextSeries();
    for (Value v : s) {
      sum3 += static_cast<double>(v) * v * v;
      ++n;
    }
  }
  // Values are z-normalized per series, so the third moment estimates
  // skewness. The paper's astronomy dataset is "slightly skewed".
  EXPECT_GT(sum3 / n, 0.05);
}

TEST(Dataset, WriteScanReadRoundTrip) {
  ScratchDir dir;
  const std::string path = dir.File("data.bin");
  auto data = MakeDatasetFile(path, DatasetKind::kRandomWalk, 100, 64, 3);

  // Sequential scan sees the same series in order.
  DatasetScanner scanner;
  ASSERT_OK(scanner.Open(path, 64));
  EXPECT_EQ(scanner.count(), 100u);
  Series s(64);
  Status st;
  size_t i = 0;
  while (scanner.Next(s.data(), &st)) {
    ASSERT_OK(st);
    EXPECT_EQ(s, data[i]) << "series " << i;
    ++i;
  }
  EXPECT_EQ(i, 100u);

  // Random access by index and by byte offset agree.
  std::unique_ptr<RawSeriesFile> raw;
  ASSERT_OK(RawSeriesFile::Open(path, 64, &raw));
  EXPECT_EQ(raw->count(), 100u);
  Series out(64);
  ASSERT_OK(raw->ReadIndex(42, out.data()));
  EXPECT_EQ(out, data[42]);
  ASSERT_OK(raw->ReadAt(42 * 64 * sizeof(Value), out.data()));
  EXPECT_EQ(out, data[42]);
}

TEST(Dataset, RejectsMisalignedFile) {
  ScratchDir dir;
  const std::string path = dir.File("bad.bin");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(path));
    std::vector<uint8_t> junk(100, 1);  // not a multiple of 64 * 4
    ASSERT_OK(w.Write(junk.data(), junk.size()));
    ASSERT_OK(w.Finish());
  }
  std::unique_ptr<RawSeriesFile> raw;
  EXPECT_TRUE(RawSeriesFile::Open(path, 64, &raw).IsCorruption());
}

TEST(Dataset, ReadAtValidatesBounds) {
  ScratchDir dir;
  const std::string path = dir.File("data.bin");
  MakeDatasetFile(path, DatasetKind::kRandomWalk, 10, 64, 4);
  std::unique_ptr<RawSeriesFile> raw;
  ASSERT_OK(RawSeriesFile::Open(path, 64, &raw));
  Series out(64);
  EXPECT_FALSE(raw->ReadAt(3, out.data()).ok());  // misaligned
  EXPECT_FALSE(raw->ReadAt(10 * 64 * sizeof(Value), out.data()).ok());
}

TEST(Dataset, AppendGrowsFile) {
  ScratchDir dir;
  const std::string path = dir.File("data.bin");
  auto data = MakeDatasetFile(path, DatasetKind::kRandomWalk, 10, 64, 5);
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 6);
  std::vector<Series> batch = {gen->NextSeries(), gen->NextSeries()};
  ASSERT_OK(AppendToDataset(path, batch));
  std::unique_ptr<RawSeriesFile> raw;
  ASSERT_OK(RawSeriesFile::Open(path, 64, &raw));
  EXPECT_EQ(raw->count(), 12u);
  Series out(64);
  ASSERT_OK(raw->ReadIndex(11, out.data()));
  EXPECT_EQ(out, batch[1]);
}

}  // namespace
}  // namespace coconut
