// SSE4.2 CRC32C backend: the only translation unit compiled with -msse4.2
// (see CMakeLists.txt), gated behind a runtime CPUID check by the dispatcher
// in crc32c.cc so the rest of the binary stays runnable on pre-SSE4.2 x86.
// On other architectures this file compiles to its empty-stub branch.
#include "src/common/crc32c_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <nmmintrin.h>

#include <cstring>

namespace coconut {
namespace crc32c {
namespace internal {
namespace {

uint32_t ExtendSse42(uint32_t crc, const uint8_t* p, size_t n) {
  uint32_t c = ~crc;
  while (n != 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
#if defined(__x86_64__)
  uint64_t c64 = c;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c64 = _mm_crc32_u64(c64, v);
    p += 8;
    n -= 8;
  }
  c = static_cast<uint32_t>(c64);
#else
  while (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    c = _mm_crc32_u32(c, v);
    p += 4;
    n -= 4;
  }
#endif
  while (n != 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
  return ~c;
}

}  // namespace

ExtendFn Sse42Backend() {
  return __builtin_cpu_supports("sse4.2") ? &ExtendSse42 : nullptr;
}

}  // namespace internal
}  // namespace crc32c
}  // namespace coconut

#else  // not x86

namespace coconut {
namespace crc32c {
namespace internal {

ExtendFn Sse42Backend() { return nullptr; }

}  // namespace internal
}  // namespace crc32c
}  // namespace coconut

#endif
