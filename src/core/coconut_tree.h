// Coconut-Tree (paper §4.3): a balanced B+-tree over sortable invSAX
// summarizations, bulk-loaded bottom-up from an externally sorted stream of
// (invSAX, position) pairs (Algorithm 3). The index is contiguous on disk,
// balanced, and densely packed (median/packed splits instead of prefix
// splits).
//
// Queries:
//  * ApproxSearch (Algorithm 4): descend to the leaf where the query's
//    invSAX key would reside and compute true distances over a window of
//    neighboring (contiguous) leaves.
//  * ExactSearch (Algorithm 5, "CoconutTreeSIMS"): seed a best-so-far with
//    the approximate answer, compute lower bounds over the in-memory
//    summarization array with parallel threads, then perform a
//    skip-sequential pass over the data fetching only unpruned series.
//
// Both queries accept k >= 1 and return the k nearest neighbors.
//
// Thread safety: the query paths (ApproxSearch/ExactSearch/ReadLeaf*) are
// const and safe to call concurrently from many threads — per-query scratch
// buffers replace shared mutable state, and the lazily-loaded SIMS arrays
// are guarded by a load-once latch. MergeBatch is a writer and must not run
// concurrently with queries on the same object (CoconutForest provides
// snapshot isolation on top for that).
//
// Updates: batches are ingested by sorting the new entries and
// merge-rebuilding the contiguous leaf run (sequential I/O), the bulk
// analogue the paper's Fig 10a exercises.
#ifndef COCONUT_CORE_COCONUT_TREE_H_
#define COCONUT_CORE_COCONUT_TREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/zkey.h"
#include "src/core/coconut_options.h"
#include "src/core/query_scratch.h"
#include "src/core/tree_format.h"
#include "src/io/file.h"
#include "src/series/dataset.h"
#include "src/series/series.h"
#include "src/sort/external_sort.h"

namespace coconut {

/// Construction statistics reported by the benchmark harnesses.
struct TreeBuildStats {
  double summarize_seconds = 0.0;  // raw scan + invSAX computation
  double sort_seconds = 0.0;       // external sort (incl. spills/merges)
  double load_seconds = 0.0;       // bottom-up bulk load
  size_t spilled_runs = 0;
  uint64_t num_entries = 0;

  double total_seconds() const {
    return summarize_seconds + sort_seconds + load_seconds;
  }
};

class CoconutTree {
 public:
  /// Reusable per-caller scratch for the query paths (see
  /// src/core/query_scratch.h): queries allocate one internally when none
  /// is supplied; batch executors (QueryEngine) pass one per worker.
  using QueryScratch = coconut::QueryScratch;

  /// Builds an index over the raw dataset at `raw_path` into `index_path`
  /// (plus a `<index_path>.sax` sidecar holding the in-memory-scan summary
  /// array). Algorithm 3 of the paper.
  static Status Build(const std::string& raw_path,
                      const std::string& index_path,
                      const CoconutOptions& options,
                      TreeBuildStats* stats = nullptr);

  /// Opens an existing index. `raw_path` must be the dataset the index was
  /// built over (used by non-materialized lookups).
  static Status Open(const std::string& index_path,
                     const std::string& raw_path,
                     std::unique_ptr<CoconutTree>* out);

  /// Approximate k-NN search: visits a window of `num_leaves` contiguous
  /// leaf pages centered on the query's would-be position (paper's CTree(r)
  /// notation: CTree(1) visits one page, CTree(10) visits ten).
  Status ApproxSearch(const Value* query, size_t num_leaves,
                      SearchResult* result, size_t k = 1) const;
  Status ApproxSearch(const Value* query, size_t num_leaves,
                      SearchResult* result, size_t k,
                      QueryScratch* scratch) const;

  /// Exact k-NN search via CoconutTreeSIMS. `approx_leaves` is the radius
  /// given to the seeding approximate search.
  Status ExactSearch(const Value* query, size_t approx_leaves,
                     SearchResult* result, size_t k = 1) const;
  Status ExactSearch(const Value* query, size_t approx_leaves,
                     SearchResult* result, size_t k,
                     QueryScratch* scratch) const;

  /// Bulk-ingests a batch: appends the series to the raw dataset file and
  /// merge-rebuilds the index sequentially. The in-memory state is
  /// refreshed. Not safe to run concurrently with queries on this object.
  Status MergeBatch(const std::vector<Series>& batch);

  // --- introspection (used by tests and the space-overhead benches) ---
  uint64_t num_entries() const { return super_.num_entries; }
  uint64_t num_leaves() const { return super_.num_leaves; }
  /// Tree height including the leaf level.
  uint64_t height() const { return super_.num_internal_levels + 1; }
  /// Mean leaf occupancy relative to leaf_capacity.
  double AvgLeafFill() const;
  /// Total index size on disk (index file + sidecar).
  Status IndexSizeBytes(uint64_t* bytes) const;
  const CoconutOptions& options() const { return options_; }
  const std::string& index_path() const { return index_path_; }

  /// Entries of one leaf, decoded (used by tests and the trie comparison).
  Status ReadLeafEntries(uint64_t leaf, std::vector<ZKey>* keys,
                         std::vector<uint64_t>* offsets) const;

  /// Raw bytes of one leaf page plus its live entry count (used by the
  /// sequential merge in MergeBatch).
  Status ReadLeafEntriesRaw(uint64_t leaf, std::vector<uint8_t>* page,
                            size_t* entry_count) const;

 private:
  friend class CoconutTreeBuilder;
  CoconutTree() = default;

  Status LoadInternalLevels();
  /// Loads the SIMS sidecar arrays once; concurrent callers block until the
  /// first load finishes and share its status.
  Status EnsureSimsLoaded() const;
  /// Walks the in-memory internal levels; returns the leaf index whose key
  /// range covers `key`.
  uint64_t LocateLeaf(const ZKey& key) const;
  Status ReadLeafPage(uint64_t leaf, std::vector<uint8_t>* page,
                      size_t* entry_count) const;
  /// True distance from query to entry `slot` of a decoded leaf page.
  Status EntryDistanceSq(const uint8_t* entry, const Value* query,
                         double bound_sq, QueryScratch* scratch,
                         double* dist_sq) const;

  CoconutOptions options_;
  TreeSuperblock super_;
  std::string index_path_;
  std::string raw_path_;
  std::unique_ptr<RandomAccessFile> index_file_;
  // The .sax sidecar is opened eagerly when present (so a snapshot holder
  // can still load it after compaction unlinks the file); contents load
  // lazily. Mutable: EnsureSimsLoaded may retry the open under sims_mu_.
  mutable std::unique_ptr<RandomAccessFile> sidecar_file_;
  std::unique_ptr<RawSeriesFile> raw_file_;

  struct InternalLevel {
    // Concatenated (first_key, child) entries of all pages of the level;
    // pages need not be distinguished once in memory.
    std::vector<ZKey> keys;
    std::vector<uint64_t> children;
  };
  // levels_[0] is the level directly above the leaves; back() is the root.
  std::vector<InternalLevel> levels_;

  // v2 integrity section, loaded at Open: expected CRC32C of each on-disk
  // leaf page (verified by every ReadLeafPage) and of the internal region
  // (verified while loading it). Empty/zero for v1 files.
  std::vector<uint32_t> leaf_crcs_;
  uint32_t internal_crc_ = 0;

  // SIMS in-memory arrays (leaf order), loaded lazily from the sidecar on
  // first exact query. Immutable once sims_loaded_ is set (release-store
  // after the arrays are filled; acquire-load fast path keeps the steady
  // state lock-free); sims_mu_ serializes the one-time load. The arrays
  // carry no GUARDED_BY: after the latch publishes, readers touch them
  // without the mutex (the release/acquire pair is the ordering).
  mutable Mutex sims_mu_;
  mutable std::atomic<bool> sims_loaded_{false};
  mutable std::vector<uint8_t> sims_sax_;      // num_entries * segments bytes
  mutable std::vector<uint64_t> sims_offsets_;  // num_entries
};

/// Shared bulk-loading machinery, reused by Build, MergeBatch, and the
/// ablation benches. Consumes a sorted stream of encoded leaf entries.
class CoconutTreeBuilder {
 public:
  /// Writes a complete index file (+ .sax sidecar) from `stream`, whose
  /// records are leaf entries (tree_format.h layout) sorted by key.
  static Status BulkLoad(SortedRecordStream* stream,
                         const CoconutOptions& options,
                         const std::string& index_path);

  /// Scans the dataset, computes invSAX keys (in parallel on the shared
  /// pool unless options.num_threads == 1), external-sorts the entries, and
  /// bulk-loads. `stats` (optional) receives phase timings.
  static Status BuildFromDataset(const std::string& raw_path,
                                 const std::string& index_path,
                                 const CoconutOptions& options,
                                 TreeBuildStats* stats);
};

}  // namespace coconut

#endif  // COCONUT_CORE_COCONUT_TREE_H_
