// Deterministic random number generation used by the data series generators,
// the workload drivers, and the property-based tests. A thin wrapper over
// std::mt19937_64 so that all call sites share one seeding convention.
#ifndef COCONUT_COMMON_RANDOM_H_
#define COCONUT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace coconut {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Standard normal draw (mean 0, stddev 1).
  double Gaussian() { return normal_(engine_); }

  /// Uniform double in [0, 1).
  double Uniform() { return uniform_(engine_); }

  /// Uniform integer in [0, n) for n > 0.
  uint64_t UniformInt(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace coconut

#endif  // COCONUT_COMMON_RANDOM_H_
