// Backend seam for the CRC32C dispatcher (src/common/crc32c.cc). The SSE4.2
// backend lives in its own translation unit (crc32c_sse42.cc) compiled with
// -msse4.2 for just that file, behind a runtime CPUID check — the same
// per-TU codegen pattern as src/simd/kernels_avx2.cc.
#ifndef COCONUT_COMMON_CRC32C_INTERNAL_H_
#define COCONUT_COMMON_CRC32C_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace coconut {
namespace crc32c {
namespace internal {

using ExtendFn = uint32_t (*)(uint32_t crc, const uint8_t* data, size_t n);

/// SSE4.2 hardware backend, or nullptr when the CPU (or build target)
/// lacks it.
ExtendFn Sse42Backend();

}  // namespace internal
}  // namespace crc32c
}  // namespace coconut

#endif  // COCONUT_COMMON_CRC32C_INTERNAL_H_
