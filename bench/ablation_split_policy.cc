// Ablation (paper §3.2): median-based vs prefix-based splitting, plus the
// fill-factor knob of the bulk loader. Builds Coconut-Tree at several fill
// factors and Coconut-Trie (prefix splits) over the same data and reports
// leaf counts, fill, space, and approximate-search quality.
#include "bench/bench_util.h"
#include "src/core/coconut_tree.h"
#include "src/core/coconut_trie.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;

void Run() {
  Banner("Ablation: split policy",
         "median splits (fill-factor sweep) vs prefix splits");
  const size_t count = 40000 * Scale();
  BenchDir dir;
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk, count,
                                         kLength, 61, "data.bin");
  const size_t queries = 50;
  auto qs = MakeQueries(DatasetKind::kRandomWalk, queries, kLength, 6100);

  SummaryOptions sum;
  sum.series_length = kLength;
  sum.segments = 16;
  sum.cardinality_bits = 8;

  PrintHeader(
      {"index", "leaves", "fill", "size", "avg_approx_dist"});

  for (double fill : {1.0, 0.75, 0.5}) {
    CoconutOptions opts;
    opts.summary = sum;
    opts.leaf_capacity = 2000;
    opts.fill_factor = fill;
    opts.tmp_dir = dir.path();
    const std::string path = dir.File("ctree-" + std::to_string(fill));
    CheckOk(CoconutTree::Build(raw, path, opts), "build");
    std::unique_ptr<CoconutTree> tree;
    CheckOk(CoconutTree::Open(path, raw, &tree), "open");
    double dist = 0.0;
    for (const Series& q : qs) {
      SearchResult r;
      CheckOk(tree->ApproxSearch(q.data(), 1, &r), "approx");
      dist += r.distance;
    }
    uint64_t bytes = 0;
    CheckOk(tree->IndexSizeBytes(&bytes), "size");
    PrintRow({"CTree fill=" + std::to_string(fill).substr(0, 4),
              FmtCount(tree->num_leaves()),
              FmtDouble(tree->AvgLeafFill(), 3), FmtMb(bytes),
              FmtDouble(dist / queries, 3)});
  }
  {
    CoconutOptions opts;
    opts.summary = sum;
    opts.leaf_capacity = 2000;
    opts.tmp_dir = dir.path();
    const std::string path = dir.File("ctrie.idx");
    CheckOk(CoconutTrie::Build(raw, path, opts), "trie build");
    std::unique_ptr<CoconutTrie> trie;
    CheckOk(CoconutTrie::Open(path, raw, &trie), "trie open");
    double dist = 0.0;
    for (const Series& q : qs) {
      SearchResult r;
      CheckOk(trie->ApproxSearch(q.data(), 1, &r), "approx");
      dist += r.distance;
    }
    uint64_t bytes = 0;
    CheckOk(trie->IndexSizeBytes(&bytes), "size");
    PrintRow({"CTrie (prefix)", FmtCount(trie->num_pages()),
              FmtDouble(trie->AvgLeafFill(), 3), FmtMb(bytes),
              FmtDouble(dist / queries, 3)});
  }
  std::printf(
      "\nExpectation (paper §3.2 / Fig 8c): median splits keep fill at the\n"
      "configured factor (1.0 -> ~100%%); prefix splits cannot balance and\n"
      "fill collapses, multiplying leaf count and space.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
