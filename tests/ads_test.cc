// ADS / ADS+ / ADSFull baseline: SIMS exact search correctness, adaptive
// refinement behaviour, materialization, and batch updates.
#include "src/baselines/ads/ads_index.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

struct AdsCase {
  DatasetKind kind;
  bool materialized;
  size_t count;
  size_t adaptive_target;
};

class AdsTest : public ::testing::TestWithParam<AdsCase> {
 protected:
  void Build(const AdsCase& c) {
    raw_ = dir_.File("data.bin");
    data_ = MakeDatasetFile(raw_, c.kind, c.count, 64, 91);
    AdsOptions opts;
    opts.summary.series_length = 64;
    opts.summary.segments = 16;
    opts.leaf_capacity = 200;
    opts.materialized = c.materialized;
    opts.adaptive_leaf_target = c.adaptive_target;
    ASSERT_OK(AdsIndex::Build(raw_, dir_.File("ads.pages"), opts, &index_));
  }

  ScratchDir dir_;
  std::string raw_;
  std::vector<Series> data_;
  std::unique_ptr<AdsIndex> index_;
};

TEST_P(AdsTest, ExactSimsEqualsBruteForce) {
  Build(GetParam());
  auto qgen = MakeGenerator(GetParam().kind, 64, 700);
  for (int q = 0; q < 15; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
    SearchResult res;
    ASSERT_OK(index_->ExactSearch(query.data(), &res));
    EXPECT_NEAR(res.distance, bf_dist, 1e-4) << "query " << q;
  }
}

TEST_P(AdsTest, ApproxIsUpperBoundOfExact) {
  Build(GetParam());
  auto qgen = MakeGenerator(GetParam().kind, 64, 701);
  for (int q = 0; q < 8; ++q) {
    const Series query = qgen->NextSeries();
    SearchResult approx, exact;
    ASSERT_OK(index_->ApproxSearch(query.data(), &approx));
    ASSERT_OK(index_->ExactSearch(query.data(), &exact));
    EXPECT_GE(approx.distance + 1e-6, exact.distance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, AdsTest,
    ::testing::Values(AdsCase{DatasetKind::kRandomWalk, false, 2000, 50},
                      AdsCase{DatasetKind::kRandomWalk, true, 2000, 0},
                      AdsCase{DatasetKind::kSeismic, false, 1500, 50},
                      AdsCase{DatasetKind::kAstronomy, false, 1500, 0}),
    [](const auto& info) {
      const AdsCase& c = info.param;
      return std::string(DatasetKindName(c.kind)) +
             (c.materialized ? "_full_" : "_plus_") + std::to_string(c.count) +
             "_adapt" + std::to_string(c.adaptive_target);
    });

TEST(AdsAdaptive, QueriesRefineLeaves) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 3000, 64, 92);
  AdsOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 2000;
  opts.adaptive_leaf_target = 100;
  std::unique_ptr<AdsIndex> index;
  ASSERT_OK(AdsIndex::Build(raw, dir.File("ads.pages"), opts, &index));
  const uint64_t before = index->num_leaves();
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 93);
  for (int q = 0; q < 10; ++q) {
    const Series query = qgen->NextSeries();
    SearchResult res;
    ASSERT_OK(index->ApproxSearch(query.data(), &res));
  }
  // ADS+ splits visited leaves: the leaf count must grow as queries arrive.
  EXPECT_GT(index->num_leaves(), before);
}

TEST(AdsUpdates, InsertBatchKeepsExactness) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 1200, 64, 94);
  AdsOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 200;
  std::unique_ptr<AdsIndex> index;
  ASSERT_OK(AdsIndex::Build(raw, dir.File("ads.pages"), opts, &index));

  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 95);
  uint64_t raw_bytes = data.size() * 64 * sizeof(Value);
  for (int round = 0; round < 2; ++round) {
    std::vector<Series> batch;
    for (int i = 0; i < 300; ++i) {
      batch.push_back(gen->NextSeries());
      data.push_back(batch.back());
    }
    ASSERT_OK(AppendToDataset(raw, batch));
    ASSERT_OK(index->InsertBatch(batch, raw_bytes));
    raw_bytes += batch.size() * 64 * sizeof(Value);

    const Series query = gen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
    SearchResult res;
    ASSERT_OK(index->ExactSearch(query.data(), &res));
    EXPECT_NEAR(res.distance, bf_dist, 1e-4) << "round " << round;
  }
  EXPECT_EQ(index->num_entries(), data.size());
}

TEST(AdsBuildStats, MaterializationCostsSecondPass) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  MakeDatasetFile(raw, DatasetKind::kRandomWalk, 1500, 64, 96);
  AdsOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 200;
  opts.materialized = true;
  std::unique_ptr<AdsIndex> index;
  AdsBuildStats stats;
  ASSERT_OK(AdsIndex::Build(raw, dir.File("ads.pages"), opts, &index,
                            &stats));
  EXPECT_GT(stats.materialize_seconds, 0.0);
  EXPECT_EQ(stats.num_entries, 1500u);
}

}  // namespace
}  // namespace coconut
