#include "src/exec/query_engine.h"

#include <algorithm>

#include "src/common/sync.h"
#include "src/common/timer.h"
#include "src/io/io_stats.h"
#include "src/io/retry.h"
#include "src/obs/metrics.h"
#include "src/obs/slow_query_log.h"
#include "src/obs/trace.h"

namespace coconut {

namespace {

/// Registry endpoints every batch records into; resolved once.
struct QueryMetrics {
  Histogram* exact_latency_ns;
  Histogram* approx_latency_ns;
  Histogram* exact_cpu_ns;
  Histogram* approx_cpu_ns;
  Histogram* batch_ns;
  Counter* queries;
  Counter* batches;
  Counter* leaves_visited;
  Counter* records_fetched;
  Counter* pruned_mindist;
  Counter* memtable_scanned;
  Counter* route_ns;
  Counter* approx_stage_ns;
  Counter* refine_ns;
  Counter* merge_ns;
};

QueryMetrics& Metrics() {
  static QueryMetrics m = []() {
    MetricRegistry& reg = MetricRegistry::Default();
    return QueryMetrics{
        reg.GetHistogram("query.exact.latency_ns"),
        reg.GetHistogram("query.approx.latency_ns"),
        reg.GetHistogram("query.exact.cpu_ns"),
        reg.GetHistogram("query.approx.cpu_ns"),
        reg.GetHistogram("query.batch_ns"),
        reg.GetCounter("query.count"),
        reg.GetCounter("query.batches"),
        reg.GetCounter("query.leaves_visited"),
        reg.GetCounter("query.records_fetched"),
        reg.GetCounter("query.pruned_mindist"),
        reg.GetCounter("query.memtable_scanned"),
        reg.GetCounter("query.stage.route_ns"),
        reg.GetCounter("query.stage.approx_ns"),
        reg.GetCounter("query.stage.refine_ns"),
        reg.GetCounter("query.stage.merge_ns"),
    };
  }();
  return m;
}

/// Flushes one finished query's trace into the registry: one histogram
/// record plus a handful of relaxed counter adds — the only shared-state
/// touch the whole query makes.
void FlushQueryTrace(const QueryTrace& t, bool exact) {
  QueryMetrics& m = Metrics();
  (exact ? m.exact_latency_ns : m.approx_latency_ns)->Record(t.total_ns);
  (exact ? m.exact_cpu_ns : m.approx_cpu_ns)->Record(t.cpu_ns);
  SlowQueryLog::Default().Record(t, exact);
  m.queries->Increment();
  m.leaves_visited->Add(t.leaves_visited);
  m.records_fetched->Add(t.records_fetched);
  m.pruned_mindist->Add(t.pruned_mindist);
  m.memtable_scanned->Add(t.memtable_scanned);
  m.route_ns->Add(t.route_ns);
  m.approx_stage_ns->Add(t.approx_ns);
  m.refine_ns->Add(t.refine_ns);
  m.merge_ns->Add(t.merge_ns);
}

/// RAII batch bookkeeping: wall-time histogram + batch counter.
class BatchScope {
 public:
  BatchScope() = default;
  ~BatchScope() {
    Metrics().batch_ns->Record(watch_.ElapsedNanos());
    Metrics().batches->Increment();
  }

 private:
  Stopwatch watch_;
};

/// Runs `one(i, scratch)` for every work index on the pool, collecting the
/// first failure. Chunks share a per-chunk scratch (of type `Scratch`); the
/// chunk size keeps a few chunks per thread for load balancing without
/// allocating scratch per query.
///
/// Each item executes under a fresh QueryTrace hung off the scratch; hot
/// loops bump the trace's plain fields and the finished trace is flushed to
/// the registry here, once per item (skipped when `flush_per_item` is
/// false — the store path aggregates its per-cell traces into per-query
/// traces first). When `item_traces` is non-null it must be pre-sized to
/// `num_items` and receives every item's trace.
template <typename Scratch, typename Fn>
Status RunBatch(ThreadPool* pool, size_t num_items, bool exact,
                bool flush_per_item, std::vector<QueryTrace>* item_traces,
                const Context& ctx, const Fn& one) {
  Status first_error = Status::OK();
  Mutex error_mu;
  // Hot-path form of the context: null when the batch carries no deadline
  // and no cancel token, so the per-leaf polls inside the searches stay a
  // single pointer compare.
  const Context* item_ctx =
      (ctx.has_deadline() || ctx.cancel_token() != nullptr) ? &ctx : nullptr;
  pool->ParallelFor(
      0, num_items, /*grain=*/0,
      [&](uint64_t lo, uint64_t hi) {
        // Attribute this chunk's file reads to the query component
        // ("io.query.*"). Per-thread: nested fan-out (SIMS lower bounds)
        // does no file I/O, so the coarse scope is accurate.
        IoComponentScope io_scope("query");
        // Ambient context for the I/O layer: retry backoff under this chunk
        // never sleeps past the batch deadline (src/io/retry.h).
        IoDeadlineScope io_deadline(item_ctx);
        Scratch scratch;
        scratch.context = item_ctx;
        for (uint64_t i = lo; i < hi; ++i) {
          // Give up before dispatching an item once the batch is dead; the
          // first DeadlineExceeded/Aborted is kept as the batch status.
          if (item_ctx != nullptr) {
            Status ctx_st = item_ctx->Check("query.item");
            if (!ctx_st.ok()) {
              MutexLock lock(&error_mu);
              if (first_error.ok()) first_error = ctx_st;
              return;
            }
          }
          QueryTrace trace;
          scratch.trace = &trace;
          // Both clocks start at this item's dispatch (not batch start):
          // wall for end-to-end latency, thread-CPU for oversubscription-
          // independent per-query cost (see QueryTrace::cpu_ns).
          TraceSpan span(exact ? "query.exact" : "query.approx", "query");
          ThreadCpuStopwatch cpu;
          Stopwatch watch;
          Status st = one(i, &scratch);
          trace.total_ns = watch.ElapsedNanos();
          trace.cpu_ns = cpu.ElapsedNanos();
          scratch.trace = nullptr;
          if (!st.ok()) {
            MutexLock lock(&error_mu);
            if (first_error.ok()) first_error = st;
            return;
          }
          if (flush_per_item) FlushQueryTrace(trace, exact);
          if (item_traces != nullptr) (*item_traces)[i] = trace;
        }
      });
  return first_error;
}

}  // namespace

Status QueryEngine::Admit(const std::vector<Series>& queries,
                          AdmissionController::Ticket* ticket) const {
  if (admission_ == nullptr) return Status::OK();
  size_t bytes = 0;
  for (const Series& q : queries) bytes += q.size() * sizeof(Value);
  return admission_->Admit(bytes, ticket);
}

Status QueryEngine::ExecuteBatch(const CoconutTree& tree,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results,
                                 std::vector<QueryTrace>* traces,
                                 const Context& ctx) const {
  AdmissionController::Ticket ticket;
  COCONUT_RETURN_IF_ERROR(Admit(queries, &ticket));
  BatchScope batch;
  results->assign(queries.size(), SearchResult{});
  if (traces != nullptr) traces->assign(queries.size(), QueryTrace{});
  const bool exact = spec.mode == QuerySpec::Mode::kExact;
  return RunBatch<CoconutTree::QueryScratch>(
      pool_, queries.size(), exact, /*flush_per_item=*/true, traces, ctx,
      [&](uint64_t i, CoconutTree::QueryScratch* scratch) {
        const Value* q = queries[i].data();
        SearchResult* r = &(*results)[i];
        return exact
                   ? tree.ExactSearch(q, spec.approx_leaves, r, spec.k,
                                      scratch)
                   : tree.ApproxSearch(q, spec.approx_leaves, r, spec.k,
                                       scratch);
      });
}

Status QueryEngine::ExecuteBatch(const CoconutForest& forest,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results,
                                 std::vector<QueryTrace>* traces,
                                 const Context& ctx) const {
  return ExecuteBatch(forest, forest.GetSnapshot(), queries, spec, results,
                      traces, ctx);
}

Status QueryEngine::ExecuteBatch(const CoconutForest& forest,
                                 const CoconutForest::Snapshot& snapshot,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results,
                                 std::vector<QueryTrace>* traces,
                                 const Context& ctx) const {
  AdmissionController::Ticket ticket;
  COCONUT_RETURN_IF_ERROR(Admit(queries, &ticket));
  BatchScope batch;
  results->assign(queries.size(), SearchResult{});
  if (traces != nullptr) traces->assign(queries.size(), QueryTrace{});
  const bool exact = spec.mode == QuerySpec::Mode::kExact;
  return RunBatch<CoconutTree::QueryScratch>(
      pool_, queries.size(), exact, /*flush_per_item=*/true, traces, ctx,
      [&](uint64_t i, CoconutTree::QueryScratch* scratch) {
        const Value* q = queries[i].data();
        SearchResult* r = &(*results)[i];
        return exact
                   ? forest.ExactSearch(snapshot, q, r, spec.k, scratch)
                   : forest.ApproxSearch(snapshot, q, spec.approx_leaves, r,
                                         spec.k, scratch);
      });
}

Status QueryEngine::ExecuteBatch(const CoconutTrie& trie,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results,
                                 std::vector<QueryTrace>* traces,
                                 const Context& ctx) const {
  AdmissionController::Ticket ticket;
  COCONUT_RETURN_IF_ERROR(Admit(queries, &ticket));
  BatchScope batch;
  results->assign(queries.size(), SearchResult{});
  if (traces != nullptr) traces->assign(queries.size(), QueryTrace{});
  const bool exact = spec.mode == QuerySpec::Mode::kExact;
  return RunBatch<CoconutTrie::QueryScratch>(
      pool_, queries.size(), exact, /*flush_per_item=*/true, traces, ctx,
      [&](uint64_t i, CoconutTrie::QueryScratch* scratch) {
        const Value* q = queries[i].data();
        SearchResult* r = &(*results)[i];
        return exact
                   ? trie.ExactSearch(q, spec.approx_leaves, r, spec.k,
                                      scratch)
                   : trie.ApproxSearch(q, spec.approx_leaves, r, spec.k,
                                       scratch);
      });
}

Status QueryEngine::ExecuteBatch(const ShardedStore& store,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results,
                                 std::vector<QueryTrace>* traces,
                                 const Context& ctx) const {
  return ExecuteBatch(store, store.GetSnapshot(), queries, spec, results,
                      traces, ctx);
}

Status QueryEngine::ExecuteBatch(const ShardedStore& store,
                                 const ShardedStore::Snapshot& snapshot,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results,
                                 std::vector<QueryTrace>* traces,
                                 const Context& ctx) const {
  AdmissionController::Ticket ticket;
  COCONUT_RETURN_IF_ERROR(Admit(queries, &ticket));
  BatchScope batch;
  results->assign(queries.size(), SearchResult{});
  if (traces != nullptr) traces->assign(queries.size(), QueryTrace{});
  const size_t num_shards = snapshot.shards.size();
  if (num_shards != store.num_shards()) {
    return Status::InvalidArgument("snapshot shard count mismatch");
  }
  if (queries.empty()) return Status::OK();
  if (snapshot.num_entries() == 0) return Status::NotFound("empty store");
  const bool exact = spec.mode == QuerySpec::Mode::kExact;

  // Cross-shard routing: the work grid is (query, shard) cells so a batch
  // saturates the pool even when it is smaller than the thread count; each
  // cell is an ordinary per-shard search against that shard's snapshot.
  // Empty shards are skipped (their cell stays a default SearchResult,
  // which merges as "no candidates").
  std::vector<SearchResult> cells(queries.size() * num_shards);
  std::vector<QueryTrace> cell_traces(cells.size());
  COCONUT_RETURN_IF_ERROR(RunBatch<CoconutTree::QueryScratch>(
      pool_, cells.size(), exact, /*flush_per_item=*/false, &cell_traces, ctx,
      [&](uint64_t cell, CoconutTree::QueryScratch* scratch) {
        const size_t qi = static_cast<size_t>(cell) / num_shards;
        const size_t si = static_cast<size_t>(cell) % num_shards;
        if (snapshot.shards[si].num_entries() == 0) return Status::OK();
        const Value* q = queries[qi].data();
        SearchResult* r = &cells[cell];
        const CoconutForest& shard = store.shard(si);
        return exact
                   ? shard.ExactSearch(snapshot.shards[si], q, r, spec.k,
                                       scratch)
                   : shard.ApproxSearch(snapshot.shards[si], q,
                                        spec.approx_leaves, r, spec.k,
                                        scratch);
      }));
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<SearchResult> per_shard(
        cells.begin() + qi * num_shards, cells.begin() + (qi + 1) * num_shards);
    QueryTrace qtrace;
    for (size_t si = 0; si < num_shards; ++si) {
      qtrace.MergeFrom(cell_traces[qi * num_shards + si]);
    }
    ThreadCpuStopwatch merge_cpu;
    Stopwatch merge_watch;
    {
      TraceSpan merge_span("query.merge", "query");
      ShardedStore::MergeShardResults(per_shard, spec.k, &(*results)[qi]);
    }
    const uint64_t merge_ns = merge_watch.ElapsedNanos();
    qtrace.cpu_ns += merge_cpu.ElapsedNanos();
    qtrace.merge_ns += merge_ns;
    qtrace.total_ns += merge_ns;
    FlushQueryTrace(qtrace, exact);
    if (traces != nullptr) (*traces)[qi] = qtrace;
  }
  return Status::OK();
}

}  // namespace coconut
