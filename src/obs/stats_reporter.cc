#include "src/obs/stats_reporter.h"

#include <cinttypes>
#include <string>

namespace coconut {

StatsReporter::StatsReporter(std::chrono::milliseconds interval,
                             MetricRegistry* registry, std::FILE* out)
    : interval_(interval), registry_(registry), out_(out) {
  last_ = registry_->Snapshot();
  // coconut-lint: allow(raw-thread) -- see stats_reporter.h
  thread_ = std::thread([this]() { Loop(); });
}

void StatsReporter::Stop() {
  {
    MutexLock lock(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void StatsReporter::Loop() {
  MutexLock lock(&mu_);
  while (!stop_) {
    // Sleep one interval, absorbing spurious and stray wakeups; a
    // notification only ever means "stop_ became true".
    const auto deadline = std::chrono::steady_clock::now() + interval_;
    while (!stop_ &&
           cv_.WaitUntil(mu_, deadline) == std::cv_status::no_timeout) {
    }
    if (stop_) break;
    lock.Unlock();
    ReportOnce();
    lock.Lock();
  }
}

void StatsReporter::ReportOnce() {
  const RegistrySnapshot now = registry_->Snapshot();
  std::string line = "[coconut-stats]";
  for (const auto& [name, v] : now.counters) {
    auto it = last_.counters.find(name);
    const uint64_t before = it == last_.counters.end() ? 0 : it->second;
    if (v != before) {
      line += " " + name + "=+" + std::to_string(v - before);
    }
  }
  for (const auto& [name, v] : now.gauges) {
    auto it = last_.gauges.find(name);
    if (it == last_.gauges.end() || it->second != v) {
      line += " " + name + "=" + std::to_string(v);
    }
  }
  for (const auto& [name, h] : now.histograms) {
    auto it = last_.histograms.find(name);
    const uint64_t before =
        it == last_.histograms.end() ? 0 : it->second.count;
    if (h.count != before) {
      const HistogramSnapshot d =
          it == last_.histograms.end() ? h : h.Delta(it->second);
      line += " " + name + "{n=+" + std::to_string(d.count) +
              ",p50=" + std::to_string(d.ValueAtQuantile(0.5)) +
              ",p99=" + std::to_string(d.ValueAtQuantile(0.99)) + "}";
    }
  }
  if (line.size() > sizeof("[coconut-stats]") - 1) {
    line += "\n";
    std::fputs(line.c_str(), out_);
    std::fflush(out_);
  }
  last_ = now;
}

}  // namespace coconut
