// Loser tree (tournament tree) for k-way merging: selecting the next record
// costs one comparison per level — half of what a binary heap's sift-down
// pays, because each internal node stores the *loser* of its match and the
// winner bubbles straight up a known path.
//
// Leaves are the integers [0, k); the caller owns their values (merge
// cursors) and supplies a strict-weak `less(a, b)` over leaf indices.
// Exhausted cursors must order after every live one; ties among live
// cursors should break on the leaf index to keep multi-run merges stable.
//
// Usage:
//   LoserTree<decltype(less)> tree(k, less);
//   while (live(tree.winner())) {
//     consume(tree.winner());
//     advance cursor of tree.winner();
//     tree.Replay();  // re-seed the winner's path
//   }
#ifndef COCONUT_SORT_LOSER_TREE_H_
#define COCONUT_SORT_LOSER_TREE_H_

#include <cstddef>
#include <vector>

namespace coconut {

template <typename Less>
class LoserTree {
 public:
  /// Builds the initial tournament over leaves [0, k). `k` must be >= 1.
  LoserTree(size_t k, Less less)
      : k_(k), less_(std::move(less)), tree_(k) {
    winner_ = k_ > 1 ? InitNode(1) : 0;
  }

  /// Leaf index holding the smallest current value.
  size_t winner() const { return winner_; }

  /// Re-plays the winner's path after its cursor advanced (or exhausted).
  void Replay() {
    size_t cur = winner_;
    for (size_t node = (k_ + cur) >> 1; node >= 1; node >>= 1) {
      if (less_(tree_[node], cur)) {
        const size_t tmp = tree_[node];
        tree_[node] = cur;
        cur = tmp;
      }
    }
    winner_ = cur;
  }

 private:
  // Implicit heap layout: internal nodes are [1, k), leaf i sits at k + i.
  // Works for any k >= 2 (not just powers of two): the tree is exactly the
  // parent structure induced by halving indices.
  size_t InitNode(size_t node) {
    if (node >= k_) return node - k_;
    const size_t a = InitNode(2 * node);
    const size_t b = InitNode(2 * node + 1);
    if (less_(b, a)) {
      tree_[node] = a;
      return b;
    }
    tree_[node] = b;
    return a;
  }

  size_t k_;
  Less less_;
  std::vector<size_t> tree_;  // tree_[node] = loser of the match at `node`
  size_t winner_;
};

}  // namespace coconut

#endif  // COCONUT_SORT_LOSER_TREE_H_
