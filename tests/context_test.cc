// Bounded time, bounded load: Context deadlines / cancellation, the
// AdmissionController gates, transient-I/O retry, and their integration
// with the query engine, the sharded store's commit protocol, and the
// external sorter. Companion doc: docs/ROBUSTNESS.md.
#include "src/common/context.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/failpoint.h"
#include "src/common/status.h"
#include "src/core/coconut_tree.h"
#include "src/exec/admission_controller.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "src/io/file.h"
#include "src/io/retry.h"
#include "src/obs/metrics.h"
#include "src/sort/external_sort.h"
#include "src/store/sharded_store.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

// --- Context / CancelToken ---

TEST(Context, DefaultNeverExpires) {
  const Context& ctx = Context::Background();
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_EQ(ctx.remaining(), std::chrono::nanoseconds::max());
  EXPECT_OK(ctx.Check("test"));
}

TEST(Context, DeadlineExpiresAndNamesTheCheckSite) {
  const Context live = Context::WithTimeout(std::chrono::seconds(30));
  EXPECT_TRUE(live.has_deadline());
  EXPECT_FALSE(live.expired());
  EXPECT_GT(live.remaining(), std::chrono::seconds(20));
  EXPECT_OK(live.Check("test"));

  const Context dead =
      Context::WithDeadline(Context::Clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(dead.expired());
  EXPECT_EQ(dead.remaining(), std::chrono::nanoseconds::zero());
  const Status st = dead.Check("tree.exact.leaf");
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_NE(st.message().find("tree.exact.leaf"), std::string::npos)
      << st.ToString();
}

TEST(Context, CancellationReportsAbortedAndWinsOverDeadline) {
  CancelToken token;
  Context ctx =
      Context::WithDeadline(Context::Clock::now() - std::chrono::seconds(1));
  ctx.set_cancel_token(&token);
  EXPECT_TRUE(ctx.Check("x").IsDeadlineExceeded());

  token.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  // Cancel is checked first: a cancelled request reports Aborted even when
  // its deadline also lapsed.
  const Status st = ctx.Check("store.commit");
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_NE(st.message().find("store.commit"), std::string::npos);
}

TEST(Context, CancelGuardFiresOnUnwindUnlessReleased) {
  CancelToken abandoned;
  {
    CancelGuard guard(&abandoned);
  }
  EXPECT_TRUE(abandoned.cancelled());

  CancelToken completed;
  {
    CancelGuard guard(&completed);
    guard.Release();
  }
  EXPECT_FALSE(completed.cancelled());
}

// --- AdmissionController ---

TEST(Admission, InflightGateShedsAndTicketReleases) {
  AdmissionOptions opts;
  opts.max_inflight = 2;
  AdmissionController ac(opts);

  AdmissionController::Ticket t1, t2, t3;
  ASSERT_OK(ac.Admit(100, &t1));
  ASSERT_OK(ac.Admit(100, &t2));
  EXPECT_EQ(ac.inflight(), 2u);
  EXPECT_EQ(ac.queued_bytes(), 200u);

  const Status shed = ac.Admit(100, &t3);
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  EXPECT_NE(shed.message().find("admission"), std::string::npos);
  EXPECT_EQ(ac.inflight(), 2u) << "shed request must not leak inflight";
  EXPECT_EQ(ac.queued_bytes(), 200u) << "shed request must not leak bytes";
  EXPECT_EQ(ac.admitted(), 2u);
  EXPECT_EQ(ac.shed(), 1u);

  t1.Release();
  EXPECT_EQ(ac.inflight(), 1u);
  EXPECT_EQ(ac.queued_bytes(), 100u);
  ASSERT_OK(ac.Admit(50, &t3));
  EXPECT_EQ(ac.inflight(), 2u);
}

TEST(Admission, QueuedBytesGateIsIndependentOfInflight) {
  AdmissionOptions opts;
  opts.max_queued_bytes = 1000;
  AdmissionController ac(opts);

  AdmissionController::Ticket t1, t2;
  ASSERT_OK(ac.Admit(900, &t1));
  const Status shed = ac.Admit(200, &t2);
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  EXPECT_EQ(ac.queued_bytes(), 900u);
  // Releasing the ticket out of order is fine (tickets are independent).
  t1.Release();
  EXPECT_EQ(ac.queued_bytes(), 0u);
  ASSERT_OK(ac.Admit(200, &t2));
}

TEST(Admission, TicketIsMovableAndScopeReleases) {
  AdmissionOptions opts;
  opts.max_inflight = 1;
  AdmissionController ac(opts);
  {
    AdmissionController::Ticket outer;
    {
      AdmissionController::Ticket inner;
      ASSERT_OK(ac.Admit(10, &inner));
      outer = std::move(inner);
    }
    // Moved-from inner released nothing; outer still holds the slot.
    EXPECT_EQ(ac.inflight(), 1u);
  }
  EXPECT_EQ(ac.inflight(), 0u);
  EXPECT_EQ(ac.queued_bytes(), 0u);
}

TEST(Admission, UnlimitedByDefault) {
  AdmissionController ac{AdmissionOptions{}};
  std::vector<AdmissionController::Ticket> tickets(100);
  for (auto& t : tickets) ASSERT_OK(ac.Admit(1 << 20, &t));
  EXPECT_EQ(ac.admitted(), 100u);
  EXPECT_EQ(ac.shed(), 0u);
}

// --- Transient-I/O retry (failpoint-driven) ---

/// Writes `payload` to `path` with failpoints disarmed.
void WriteFileRaw(const std::string& path, const std::string& payload) {
  std::unique_ptr<WritableFile> f;
  ASSERT_OK(WritableFile::OpenForAppend(path, &f));
  ASSERT_OK(f->Append(payload.data(), payload.size()));
  ASSERT_OK(f->Close());
}

TEST(Retry, ReadRecoversFromInjectedTransientErrors) {
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string path = dir.File("data.bin");
  const std::string payload = "retry-me-please";
  WriteFileRaw(path, payload);

  std::unique_ptr<RandomAccessFile> f;
  ASSERT_OK(RandomAccessFile::Open(path, &f));

  MetricRegistry& reg = MetricRegistry::Default();
  const uint64_t recovered0 = reg.GetCounter("io.retry.recovered")->Value();
  const uint64_t attempts0 = reg.GetCounter("io.retry.attempts")->Value();

  // Fail the next 2 reads; the policy allows 4 attempts, so the third
  // attempt succeeds and the caller never sees the injected errors.
  Failpoints::Default().Arm("io.file.read",
                            {Failpoints::Kind::kError, 1.0, /*remaining=*/2});
  std::string buf(payload.size(), '\0');
  ASSERT_OK(f->Read(0, buf.size(), buf.data()));
  EXPECT_EQ(buf, payload);
  EXPECT_EQ(Failpoints::Default().HitCount("io.file.read"), 2u);
  EXPECT_EQ(reg.GetCounter("io.retry.recovered")->Value(), recovered0 + 1);
  EXPECT_EQ(reg.GetCounter("io.retry.attempts")->Value(), attempts0 + 2);
}

TEST(Retry, ReadGivesUpAfterMaxAttempts) {
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string path = dir.File("data.bin");
  WriteFileRaw(path, "doomed");

  std::unique_ptr<RandomAccessFile> f;
  ASSERT_OK(RandomAccessFile::Open(path, &f));

  MetricRegistry& reg = MetricRegistry::Default();
  const uint64_t exhausted0 = reg.GetCounter("io.retry.exhausted")->Value();

  Failpoints::Default().ArmError("io.file.read");  // every attempt fails
  char buf[6];
  const Status st = f->Read(0, sizeof(buf), buf);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ(Failpoints::Default().HitCount("io.file.read"),
            static_cast<uint64_t>(RetryPolicy::IoDefault().max_attempts));
  EXPECT_EQ(reg.GetCounter("io.retry.exhausted")->Value(), exhausted0 + 1);
}

TEST(Retry, ExpiredAmbientContextStopsRetryImmediately) {
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string path = dir.File("data.bin");
  WriteFileRaw(path, "deadline");

  std::unique_ptr<RandomAccessFile> f;
  ASSERT_OK(RandomAccessFile::Open(path, &f));

  const Context dead =
      Context::WithDeadline(Context::Clock::now() - std::chrono::seconds(1));
  IoDeadlineScope io_deadline(&dead);
  Failpoints::Default().ArmError("io.file.read");
  char buf[8];
  const Status st = f->Read(0, sizeof(buf), buf);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // With the budget already spent, exactly one attempt happens: no backoff
  // sleeps, no further tries.
  EXPECT_EQ(Failpoints::Default().HitCount("io.file.read"), 1u);
}

TEST(Retry, WriteRetriesOnlyWhenNothingPersisted) {
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string path = dir.File("out.bin");

  std::unique_ptr<WritableFile> f;
  ASSERT_OK(WritableFile::OpenForAppend(path, &f));

  // A whole-write failure (nothing persisted) is retried and recovers...
  Failpoints::Default().Arm("io.file.write",
                            {Failpoints::Kind::kError, 1.0, /*remaining=*/1});
  const std::string payload = "append-after-error";
  ASSERT_OK(f->Append(payload.data(), payload.size()));
  Failpoints::Default().DisarmAll();

  // ...but a torn write (prefix persisted) must NOT be retried: blind
  // re-issue would duplicate the prefix. The error reaches the caller.
  Failpoints::Default().Arm("io.file.write",
                            {Failpoints::Kind::kTornWrite, 1.0,
                             /*remaining=*/1});
  const Status torn = f->Append(payload.data(), payload.size());
  EXPECT_TRUE(torn.IsIOError()) << torn.ToString();
  EXPECT_NE(torn.ToString().find("torn"), std::string::npos)
      << torn.ToString();
  ASSERT_OK(f->Close());
}

// --- Query engine: deadlines + admission ---

CoconutOptions SmallTree(const ScratchDir& dir) {
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 64;
  opts.tmp_dir = dir.path();
  return opts;
}

TEST(QueryEngineDeadline, StalledIoDeadlinesWhileConcurrentQueriesFinish) {
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data =
      testing::MakeDatasetFile(raw, DatasetKind::kRandomWalk, 600, 64, 4100);
  const std::string index = dir.File("tree.idx");
  ASSERT_OK(CoconutTree::Build(raw, index, SmallTree(dir)));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));

  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 4101);
  std::vector<Series> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(qgen->NextSeries());

  // Stall only deadline-bearing work: the engine publishes the request
  // context as the thread's ambient I/O deadline, so the callback can
  // tell a deadline query's reads apart from the no-deadline ones.
  Failpoints::Default().ArmCallback("io.file.read", [](size_t) {
    if (IoDeadlineScope::Current() != nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return Status::OK();
  });

  ThreadPool pool(4);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 3;

  constexpr auto kDeadline = std::chrono::milliseconds(50);
  Status deadline_status;
  std::vector<SearchResult> deadline_batch;
  std::chrono::nanoseconds deadline_elapsed{};
  std::thread deadline_thread([&] {
    const Context ctx = Context::WithTimeout(kDeadline);
    const auto t0 = Context::Clock::now();
    deadline_status =
        engine.ExecuteBatch(*tree, queries, spec, &deadline_batch,
                            /*traces=*/nullptr, ctx);
    deadline_elapsed = Context::Clock::now() - t0;
  });

  // Meanwhile a no-deadline batch against the same tree runs at full
  // speed and stays oracle-correct.
  std::vector<SearchResult> batch;
  ASSERT_OK(engine.ExecuteBatch(*tree, queries, spec, &batch));
  deadline_thread.join();

  EXPECT_TRUE(deadline_status.IsDeadlineExceeded())
      << deadline_status.ToString();
  // The acceptance bound: cooperative polling at leaf granularity returns
  // well within 5x the deadline even with every read stalled.
  EXPECT_LT(deadline_elapsed, 5 * kDeadline)
      << "took "
      << std::chrono::duration_cast<std::chrono::milliseconds>(
             deadline_elapsed)
             .count()
      << " ms";

  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto [bf_idx, bf_dist] = testing::BruteForceNn(data, queries[i]);
    EXPECT_NEAR(batch[i].distance, bf_dist, 1e-4);
  }
}

TEST(QueryEngineDeadline, ExpiredContextFailsFastWithoutTouchingTheTree) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  testing::MakeDatasetFile(raw, DatasetKind::kRandomWalk, 200, 64, 4200);
  const std::string index = dir.File("tree.idx");
  ASSERT_OK(CoconutTree::Build(raw, index, SmallTree(dir)));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));

  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 4201);
  std::vector<Series> queries{qgen->NextSeries(), qgen->NextSeries()};

  ThreadPool pool(2);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 1;
  std::vector<SearchResult> batch;
  const Context dead =
      Context::WithDeadline(Context::Clock::now() - std::chrono::seconds(1));
  const Status st = engine.ExecuteBatch(*tree, queries, spec, &batch,
                                        /*traces=*/nullptr, dead);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
}

TEST(QueryEngineAdmission, SaturatedEngineShedsWithResourceExhausted) {
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  testing::MakeDatasetFile(raw, DatasetKind::kRandomWalk, 400, 64, 4300);
  const std::string index = dir.File("tree.idx");
  ASSERT_OK(CoconutTree::Build(raw, index, SmallTree(dir)));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));

  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 4301);
  std::vector<Series> queries{qgen->NextSeries(), qgen->NextSeries()};

  AdmissionOptions aopts;
  aopts.max_inflight = 1;
  AdmissionController admission(aopts);
  ThreadPool pool(2);
  QueryEngine engine(&pool, &admission);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 1;

  // Park the first batch inside its I/O so it pins the single inflight
  // slot; every read blocks until the test releases it.
  std::atomic<bool> release{false};
  Failpoints::Default().ArmCallback("io.file.read", [&release](size_t) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });

  Status first_status;
  std::vector<SearchResult> first_batch;
  std::thread first([&] {
    first_status = engine.ExecuteBatch(*tree, queries, spec, &first_batch);
  });
  while (Failpoints::Default().HitCount("io.file.read") == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The engine is saturated: the next batch sheds immediately (sub-ms by
  // construction: admission is a counter check, no I/O).
  std::vector<SearchResult> shed_batch;
  const auto t0 = Context::Clock::now();
  const Status shed = engine.ExecuteBatch(*tree, queries, spec, &shed_batch);
  const auto shed_elapsed = Context::Clock::now() - t0;
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  EXPECT_TRUE(shed.IsTransient());
  EXPECT_LT(shed_elapsed, std::chrono::milliseconds(50));
  EXPECT_EQ(admission.shed(), 1u);

  release.store(true, std::memory_order_release);
  first.join();
  ASSERT_OK(first_status);
  Failpoints::Default().DisarmAll();

  // The slot drained with the first batch; capacity is back.
  EXPECT_EQ(admission.inflight(), 0u);
  std::vector<SearchResult> third_batch;
  ASSERT_OK(engine.ExecuteBatch(*tree, queries, spec, &third_batch));
  EXPECT_EQ(admission.admitted(), 2u);
}

// --- Sharded store: commit-protocol deadline semantics ---

StoreOptions SmallStore(const ScratchDir& dir, size_t num_shards) {
  StoreOptions opts;
  opts.forest.tree.summary.series_length = 64;
  opts.forest.tree.summary.segments = 16;
  opts.forest.tree.leaf_capacity = 64;
  opts.forest.tree.tmp_dir = dir.path();
  opts.forest.memtable_series = 100;
  opts.forest.max_runs = 3;
  opts.num_shards = num_shards;
  return opts;
}

std::vector<Series> MakeSeries(size_t count, uint64_t seed) {
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, seed);
  std::vector<Series> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(gen->NextSeries());
  return out;
}

TEST(StoreDeadline, ExpiredContextAbortsCleanlyBeforeAnySideEffect) {
  ScratchDir dir;
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(dir.File("store"), SmallStore(dir, 3), &store));
  const std::vector<Series> batch = MakeSeries(150, 4400);

  const Context dead =
      Context::WithDeadline(Context::Clock::now() - std::chrono::seconds(1));
  const Status st = store->InsertBatch(batch, dead);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_EQ(store->num_entries(), 0u);

  // Pre-begin aborts are clean: the store is NOT poisoned and the same
  // batch commits under a live context.
  ASSERT_OK(store->InsertBatch(batch));
  EXPECT_EQ(store->num_entries(), batch.size());
}

TEST(StoreDeadline, MidCommitCancellationPublishesNothingAndRecovers) {
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string root = dir.File("store");
  const std::vector<Series> committed = MakeSeries(160, 4500);
  const std::vector<Series> torn = MakeSeries(80, 4501);

  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
    std::map<size_t, size_t> owners;
    for (const Series& s : torn) ++owners[store->ShardForSeries(s)];
    ASSERT_GT(owners.size(), 1u) << "torn batch routed to a single shard";
    ASSERT_OK(store->InsertBatch(committed));
    EXPECT_EQ(store->num_entries(), committed.size());

    // Cancel mid-commit: the first shard stage flips the token, so the
    // protocol's later polls (remaining stages, the pre-journal-commit
    // backstop) observe it after the journal `begin` already landed.
    CancelToken token;
    Failpoints::Default().ArmCallback("store.commit.shard_stage",
                                      [&token](size_t) {
                                        token.Cancel();
                                        return Status::OK();
                                      });
    Context ctx;
    ctx.set_cancel_token(&token);
    const Status st = store->InsertBatch(torn, ctx);
    EXPECT_TRUE(st.IsAborted()) << st.ToString();

    // Nothing published in-process; the store is write-poisoned (an
    // abandoned journal `begin` must roll back through recovery, exactly
    // like a torn commit).
    EXPECT_EQ(store->num_entries(), committed.size());
    Failpoints::Default().DisarmAll();
    const Status poisoned = store->InsertBatch(torn);
    EXPECT_FALSE(poisoned.ok());
    EXPECT_NE(poisoned.message().find("read-only"), std::string::npos)
        << poisoned.ToString();
  }

  // Reopen: recovery rolls the torn epoch back to the committed prefix
  // and the store accepts writes again.
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
  EXPECT_EQ(store->num_entries(), committed.size());
  ASSERT_OK(store->InsertBatch(torn));
  EXPECT_EQ(store->num_entries(), committed.size() + torn.size());
}

// --- External sorter ---

TEST(SorterDeadline, SpillBoundaryHonorsExpiredContext) {
  ScratchDir dir;
  const Context dead =
      Context::WithDeadline(Context::Clock::now() - std::chrono::seconds(1));

  ExternalSortOptions opts;
  opts.record_bytes = 16;
  opts.key_bytes = 8;
  opts.memory_budget_bytes = 64 * 16;  // tiny: spills every 32 records
  opts.tmp_dir = dir.path();
  opts.num_threads = 1;  // serial: spill errors surface synchronously
  opts.context = &dead;

  ExternalSorter sorter(opts);
  uint8_t rec[16] = {0};
  Status st;
  for (int i = 0; i < 1000; ++i) {
    std::memcpy(rec, &i, sizeof(i));
    st = sorter.Add(rec);
    if (!st.ok()) break;
  }
  if (st.ok()) {
    std::unique_ptr<SortedRecordStream> stream;
    st = sorter.Finish(&stream);
  }
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_NE(st.message().find("sort."), std::string::npos) << st.ToString();
}

TEST(SorterDeadline, LiveContextSortsNormally) {
  ScratchDir dir;
  const Context live = Context::WithTimeout(std::chrono::minutes(5));

  ExternalSortOptions opts;
  opts.record_bytes = 16;
  opts.key_bytes = 8;
  opts.memory_budget_bytes = 64 * 16;
  opts.tmp_dir = dir.path();
  opts.num_threads = 1;
  opts.context = &live;

  ExternalSorter sorter(opts);
  uint8_t rec[16] = {0};
  for (int i = 499; i >= 0; --i) {
    const uint64_t key = __builtin_bswap64(static_cast<uint64_t>(i));
    std::memcpy(rec, &key, sizeof(key));
    ASSERT_OK(sorter.Add(rec));
  }
  EXPECT_GT(sorter.spilled_runs(), 1u);
  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  ASSERT_EQ(stream->count(), 500u);
  uint8_t out[16];
  Status st;
  uint64_t expect = 0;
  while (stream->Next(out, &st)) {
    uint64_t key;
    std::memcpy(&key, out, sizeof(key));
    EXPECT_EQ(__builtin_bswap64(key), expect++);
  }
  ASSERT_OK(st);
  EXPECT_EQ(expect, 500u);
}

}  // namespace
}  // namespace coconut
