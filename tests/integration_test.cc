// Cross-index integration tests: every index in the repository answers the
// same queries over the same dataset with identical exact results — the
// repository-wide correctness contract that underpins all benchmark
// comparisons. Also exercises mixed update workloads against both families.
#include "gtest/gtest.h"
#include "src/baselines/ads/ads_index.h"
#include "src/baselines/dstree/dstree_index.h"
#include "src/baselines/isax2/isax2_index.h"
#include "src/baselines/rtree/rtree.h"
#include "src/baselines/vertical/vertical_index.h"
#include "src/core/coconut_tree.h"
#include "src/core/coconut_trie.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

class AllIndexesTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(AllIndexesTest, EveryIndexAgreesWithBruteForce) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  const size_t kCount = 2000, kLength = 64;
  auto data = MakeDatasetFile(raw, GetParam(), kCount, kLength, 201);

  SummaryOptions summary;
  summary.series_length = kLength;
  summary.segments = 16;
  summary.cardinality_bits = 8;

  // Coconut-Tree + Full.
  std::unique_ptr<CoconutTree> ctree, ctree_full;
  {
    CoconutOptions opts;
    opts.summary = summary;
    opts.leaf_capacity = 64;
    opts.tmp_dir = dir.path();
    ASSERT_OK(CoconutTree::Build(raw, dir.File("i.ctree"), opts));
    ASSERT_OK(CoconutTree::Open(dir.File("i.ctree"), raw, &ctree));
    opts.materialized = true;
    ASSERT_OK(CoconutTree::Build(raw, dir.File("i.ctreefull"), opts));
    ASSERT_OK(CoconutTree::Open(dir.File("i.ctreefull"), raw, &ctree_full));
  }
  // Coconut-Trie.
  std::unique_ptr<CoconutTrie> ctrie;
  {
    CoconutOptions opts;
    opts.summary = summary;
    opts.leaf_capacity = 64;
    opts.tmp_dir = dir.path();
    ASSERT_OK(CoconutTrie::Build(raw, dir.File("i.ctrie"), opts));
    ASSERT_OK(CoconutTrie::Open(dir.File("i.ctrie"), raw, &ctrie));
  }
  // iSAX 2.0.
  std::unique_ptr<Isax2Index> isax2;
  {
    Isax2Options opts;
    opts.summary = summary;
    opts.leaf_capacity = 64;
    ASSERT_OK(Isax2Index::Create(opts, dir.File("isax2.pages"), raw, &isax2));
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_OK(isax2->Insert(data[i].data(), i * kLength * sizeof(Value)));
    }
  }
  // ADS+.
  std::unique_ptr<AdsIndex> ads;
  {
    AdsOptions opts;
    opts.summary = summary;
    opts.leaf_capacity = 64;
    ASSERT_OK(AdsIndex::Build(raw, dir.File("ads.pages"), opts, &ads));
  }
  // R-tree+.
  std::unique_ptr<RTree> rtree;
  {
    RtreeOptions opts;
    opts.summary = summary;
    opts.leaf_capacity = 64;
    opts.tmp_dir = dir.path();
    ASSERT_OK(RTree::Build(raw, dir.File("r.pages"), opts, &rtree));
  }
  // Vertical.
  std::unique_ptr<VerticalIndex> vertical;
  {
    VerticalOptions opts;
    opts.series_length = kLength;
    ASSERT_OK(VerticalIndex::Build(raw, dir.File("vertical"), opts,
                                   &vertical));
  }
  // DSTree.
  std::unique_ptr<DstreeIndex> dstree;
  {
    DstreeOptions opts;
    opts.series_length = kLength;
    opts.leaf_capacity = 64;
    ASSERT_OK(DstreeIndex::Create(opts, dir.File("d.pages"), &dstree));
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_OK(dstree->Insert(data[i].data(), i * kLength * sizeof(Value)));
    }
  }

  auto qgen = MakeGenerator(GetParam(), kLength, 999);
  for (int q = 0; q < 8; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
    SearchResult r;

    ASSERT_OK(ctree->ExactSearch(query.data(), 1, &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "CTree, query " << q;
    ASSERT_OK(ctree_full->ExactSearch(query.data(), 1, &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "CTreeFull, query " << q;
    ASSERT_OK(ctrie->ExactSearch(query.data(), 1, &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "CTrie, query " << q;
    ASSERT_OK(isax2->ExactSearch(query.data(), &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "iSAX2, query " << q;
    ASSERT_OK(ads->ExactSearch(query.data(), &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "ADS+, query " << q;
    ASSERT_OK(rtree->ExactSearch(query.data(), &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "R-tree+, query " << q;
    ASSERT_OK(vertical->ExactSearch(query.data(), &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "Vertical, query " << q;
    ASSERT_OK(dstree->ExactSearch(query.data(), &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "DSTree, query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, AllIndexesTest,
                         ::testing::Values(DatasetKind::kRandomWalk,
                                           DatasetKind::kSeismic,
                                           DatasetKind::kAstronomy),
                         [](const auto& info) {
                           return DatasetKindName(info.param);
                         });

TEST(MixedWorkload, InterleavedUpdatesAndQueriesStayExact) {
  // Miniature of Fig 10a: alternate batch ingestion and exact queries for
  // both families and validate every answer against brute force.
  ScratchDir dir;
  const size_t kLength = 64;
  const std::string raw_tree = dir.File("tree.bin");
  const std::string raw_ads = dir.File("ads.bin");
  auto data = MakeDatasetFile(raw_tree, DatasetKind::kRandomWalk, 800,
                              kLength, 301);
  {
    // Identical initial content for the ADS copy.
    BufferedWriter w;
    ASSERT_OK(w.Open(raw_ads));
    for (const Series& s : data) {
      ASSERT_OK(w.Write(s.data(), s.size() * sizeof(Value)));
    }
    ASSERT_OK(w.Finish());
  }

  SummaryOptions summary;
  summary.series_length = kLength;
  summary.segments = 16;

  CoconutOptions topts;
  topts.summary = summary;
  topts.leaf_capacity = 64;
  topts.tmp_dir = dir.path();
  ASSERT_OK(CoconutTree::Build(raw_tree, dir.File("i.ctree"), topts));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(dir.File("i.ctree"), raw_tree, &tree));

  AdsOptions aopts;
  aopts.summary = summary;
  aopts.leaf_capacity = 64;
  std::unique_ptr<AdsIndex> ads;
  ASSERT_OK(AdsIndex::Build(raw_ads, dir.File("a.pages"), aopts, &ads));

  auto gen = MakeGenerator(DatasetKind::kRandomWalk, kLength, 302);
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, kLength, 303);
  uint64_t ads_raw_bytes = data.size() * kLength * sizeof(Value);
  for (int round = 0; round < 4; ++round) {
    std::vector<Series> batch;
    for (int i = 0; i < 150; ++i) {
      batch.push_back(gen->NextSeries());
      data.push_back(batch.back());
    }
    ASSERT_OK(tree->MergeBatch(batch));
    ASSERT_OK(AppendToDataset(raw_ads, batch));
    ASSERT_OK(ads->InsertBatch(batch, ads_raw_bytes));
    ads_raw_bytes += batch.size() * kLength * sizeof(Value);

    for (int q = 0; q < 2; ++q) {
      const Series query = qgen->NextSeries();
      const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
      SearchResult rt, ra;
      ASSERT_OK(tree->ExactSearch(query.data(), 1, &rt));
      ASSERT_OK(ads->ExactSearch(query.data(), &ra));
      EXPECT_NEAR(rt.distance, bf_dist, 1e-4) << "round " << round;
      EXPECT_NEAR(ra.distance, bf_dist, 1e-4) << "round " << round;
    }
  }
  EXPECT_EQ(tree->num_entries(), data.size());
  EXPECT_EQ(ads->num_entries(), data.size());
}

TEST(SortableSummarizationContract, TreeAndTrieSeeTheSameKeys) {
  // Both Coconut variants index the same invSAX keys for the same data:
  // the union of trie leaf ranges must equal the tree's entry count, and
  // both must return identical exact answers (checked above); here we also
  // compare total entries and key extremes.
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 1000, 64, 401);
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 50;
  opts.tmp_dir = dir.path();
  ASSERT_OK(CoconutTree::Build(raw, dir.File("i.ctree"), opts));
  ASSERT_OK(CoconutTrie::Build(raw, dir.File("i.ctrie"), opts));
  std::unique_ptr<CoconutTree> tree;
  std::unique_ptr<CoconutTrie> trie;
  ASSERT_OK(CoconutTree::Open(dir.File("i.ctree"), raw, &tree));
  ASSERT_OK(CoconutTrie::Open(dir.File("i.ctrie"), raw, &trie));
  EXPECT_EQ(tree->num_entries(), trie->num_entries());
  // Median splits pack at least as densely as prefix splits.
  EXPECT_GE(tree->AvgLeafFill(), trie->AvgLeafFill() - 1e-9);
}

}  // namespace
}  // namespace coconut
