// External sorter: correctness (sorted permutation of the input) across
// memory budgets that force zero, few, and many spilled runs, including
// multi-pass merges; plus the determinism contract of the parallel sorter
// (byte-identical output across thread counts, radix vs comparison sort,
// duplicate-heavy keys, and odd record/key sizes) and the AddBatch bulk
// entry point.
#include "src/sort/external_sort.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

struct SortCase {
  size_t record_bytes;
  size_t key_bytes;
  size_t count;
  size_t memory_budget;
  size_t max_fan_in;
};

class ExternalSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(ExternalSortTest, ProducesSortedPermutation) {
  const SortCase& c = GetParam();
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = c.record_bytes;
  opts.key_bytes = c.key_bytes;
  opts.memory_budget_bytes = c.memory_budget;
  opts.tmp_dir = dir.path();
  opts.max_fan_in = c.max_fan_in;

  Rng rng(c.count * 31 + c.memory_budget);
  std::vector<std::vector<uint8_t>> originals;
  ExternalSorter sorter(opts);
  for (size_t i = 0; i < c.count; ++i) {
    std::vector<uint8_t> rec(c.record_bytes);
    for (auto& b : rec) b = static_cast<uint8_t>(rng.UniformInt(256));
    originals.push_back(rec);
    ASSERT_OK(sorter.Add(rec.data()));
  }

  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  ASSERT_EQ(stream->count(), c.count);

  std::vector<std::vector<uint8_t>> output;
  std::vector<uint8_t> rec(c.record_bytes);
  Status st;
  while (stream->Next(rec.data(), &st)) {
    ASSERT_OK(st);
    output.push_back(rec);
  }
  ASSERT_OK(st);
  ASSERT_EQ(output.size(), c.count);

  // Sorted by key prefix.
  for (size_t i = 0; i + 1 < output.size(); ++i) {
    EXPECT_LE(std::memcmp(output[i].data(), output[i + 1].data(), c.key_bytes),
              0)
        << "output not sorted at position " << i;
  }
  // Permutation: same multiset of full records.
  auto full_less = [&](const std::vector<uint8_t>& a,
                       const std::vector<uint8_t>& b) {
    return std::memcmp(a.data(), b.data(), c.record_bytes) < 0;
  };
  std::sort(originals.begin(), originals.end(), full_less);
  std::vector<std::vector<uint8_t>> sorted_output = output;
  std::sort(sorted_output.begin(), sorted_output.end(), full_less);
  EXPECT_EQ(originals, sorted_output);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ExternalSortTest,
    ::testing::Values(
        // All in memory: no spills.
        SortCase{40, 32, 1000, 4 << 20, 64},
        // Tiny budget relative to data: many runs, single merge pass.
        SortCase{40, 32, 5000, 1 << 20, 64},
        // Force multi-pass merging with a tiny fan-in.
        SortCase{40, 32, 5000, 1 << 20, 2},
        // Large materialized-style records (key + 1 KiB payload).
        SortCase{1064, 32, 800, 1 << 20, 64},
        // Key equals whole record.
        SortCase{16, 16, 3000, 1 << 20, 64},
        // Single record.
        SortCase{40, 32, 1, 2 << 20, 64}));

TEST(ExternalSort, EmptyInputYieldsEmptyStream) {
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = 40;
  opts.key_bytes = 32;
  opts.memory_budget_bytes = 2 << 20;
  opts.tmp_dir = dir.path();
  ExternalSorter sorter(opts);
  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  EXPECT_EQ(stream->count(), 0u);
  uint8_t rec[40];
  Status st;
  EXPECT_FALSE(stream->Next(rec, &st));
  ASSERT_OK(st);
}

TEST(ExternalSort, SpillsWhenBudgetExceeded) {
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = 1024;
  opts.key_bytes = 8;
  opts.memory_budget_bytes = 1 << 20;  // 1 MiB: holds ~512 records per half
  opts.tmp_dir = dir.path();
  ExternalSorter sorter(opts);
  Rng rng(1);
  std::vector<uint8_t> rec(opts.record_bytes);
  for (int i = 0; i < 2000; ++i) {
    for (auto& b : rec) b = static_cast<uint8_t>(rng.UniformInt(256));
    ASSERT_OK(sorter.Add(rec.data()));
  }
  EXPECT_GT(sorter.spilled_runs(), 1u);
  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  EXPECT_EQ(stream->count(), 2000u);
}

TEST(ExternalSort, ValidatesOptions) {
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = 0;
  opts.key_bytes = 0;
  opts.tmp_dir = dir.path();
  ExternalSorter sorter(opts);
  std::unique_ptr<SortedRecordStream> stream;
  EXPECT_FALSE(sorter.Finish(&stream).ok());
}

/// Feeds `blob` (n records) through a sorter with the given knobs and
/// returns the concatenated sorted output bytes.
std::vector<uint8_t> SortAll(const std::vector<uint8_t>& blob,
                             ExternalSortOptions opts, bool use_batch) {
  const size_t n = blob.size() / opts.record_bytes;
  ExternalSorter sorter(opts);
  if (use_batch) {
    EXPECT_OK(sorter.AddBatch(blob.data(), n));
  } else {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_OK(sorter.Add(blob.data() + i * opts.record_bytes));
    }
  }
  std::unique_ptr<SortedRecordStream> stream;
  EXPECT_OK(sorter.Finish(&stream));
  EXPECT_EQ(stream->count(), n);
  std::vector<uint8_t> out(n * opts.record_bytes);
  Status st;
  size_t i = 0;
  while (i < n && stream->Next(out.data() + i * opts.record_bytes, &st)) {
    EXPECT_OK(st);
    ++i;
  }
  EXPECT_OK(st);
  EXPECT_EQ(i, n);
  uint8_t extra[1 << 11];
  EXPECT_FALSE(stream->Next(extra, &st));
  return out;
}

/// Random records; `distinct_keys` == 0 means fully random keys, otherwise
/// keys are drawn from that many values (duplicate-heavy).
std::vector<uint8_t> MakeRecords(size_t n, size_t record_bytes,
                                 size_t key_bytes, size_t distinct_keys,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> blob(n * record_bytes);
  for (auto& b : blob) b = static_cast<uint8_t>(rng.UniformInt(256));
  if (distinct_keys > 0) {
    std::vector<std::vector<uint8_t>> keys(distinct_keys);
    for (auto& k : keys) {
      k.resize(key_bytes);
      for (auto& b : k) b = static_cast<uint8_t>(rng.UniformInt(256));
    }
    for (size_t i = 0; i < n; ++i) {
      const auto& k = keys[rng.UniformInt(static_cast<int>(distinct_keys))];
      std::memcpy(blob.data() + i * record_bytes, k.data(), key_bytes);
    }
  }
  return blob;
}

struct DeterminismCase {
  size_t record_bytes;
  size_t key_bytes;
  size_t count;
  size_t memory_budget;
  size_t max_fan_in;
  size_t distinct_keys;  // 0 = unique-ish random keys
};

class ExternalSortDeterminismTest
    : public ::testing::TestWithParam<DeterminismCase> {};

// The determinism contract: for a fixed input stream, the output bytes are
// identical across num_threads (serial vs parallel spill/merge/partitioned
// final pass), radix vs comparison run generation, and Add vs AddBatch —
// all stages are stable by arrival order.
TEST_P(ExternalSortDeterminismTest, ByteIdenticalAcrossConfigs) {
  const DeterminismCase& c = GetParam();
  const std::vector<uint8_t> blob = MakeRecords(
      c.count, c.record_bytes, c.key_bytes, c.distinct_keys,
      /*seed=*/c.count * 131 + c.memory_budget + c.distinct_keys);

  ExternalSortOptions base;
  base.record_bytes = c.record_bytes;
  base.key_bytes = c.key_bytes;
  base.memory_budget_bytes = c.memory_budget;
  base.max_fan_in = c.max_fan_in;

  ScratchDir ref_dir;
  ExternalSortOptions ref_opts = base;
  ref_opts.tmp_dir = ref_dir.path();
  ref_opts.num_threads = 1;
  const std::vector<uint8_t> reference =
      SortAll(blob, ref_opts, /*use_batch=*/false);

  // Reference sanity: sorted, and a permutation of the input.
  for (size_t i = 0; i + 1 < c.count; ++i) {
    ASSERT_LE(std::memcmp(reference.data() + i * c.record_bytes,
                          reference.data() + (i + 1) * c.record_bytes,
                          c.key_bytes),
              0);
  }
  {
    // Compare multisets of full records via sorted views.
    auto view = [&](const std::vector<uint8_t>& v) {
      std::vector<std::vector<uint8_t>> recs(c.count);
      for (size_t i = 0; i < c.count; ++i) {
        recs[i].assign(v.begin() + i * c.record_bytes,
                       v.begin() + (i + 1) * c.record_bytes);
      }
      std::sort(recs.begin(), recs.end());
      return recs;
    };
    ASSERT_EQ(view(blob), view(reference));
  }

  for (unsigned threads : {2u, 4u, 8u}) {
    for (bool radix : {true, false}) {
      for (bool batch : {false, true}) {
        ScratchDir dir;
        ExternalSortOptions opts = base;
        opts.tmp_dir = dir.path();
        opts.num_threads = threads;
        opts.use_radix = radix;
        const std::vector<uint8_t> out = SortAll(blob, opts, batch);
        ASSERT_EQ(out, reference)
            << "threads=" << threads << " radix=" << radix
            << " batch=" << batch;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ExternalSortDeterminismTest,
    ::testing::Values(
        // In-memory (no spill), random keys.
        DeterminismCase{40, 32, 2000, 4 << 20, 64, 0},
        // Spills (buffer capacity ~3276 records) with a single k=2 merge.
        DeterminismCase{40, 32, 6000, 256 << 10, 64, 0},
        // Multi-pass merge: ~4 runs at fan-in 2 forces an intermediate
        // pass before the final one.
        DeterminismCase{40, 32, 6000, 128 << 10, 2, 0},
        // Duplicate-heavy: 7 distinct keys across 6000 spilling records.
        // Pins the stable tie-breaking through spill and merge.
        DeterminismCase{40, 32, 6000, 256 << 10, 64, 7},
        // At scale: 65536-record buffers cross the parallel-sort cutoff
        // (chunked counting sort + parallel buckets actually run) and
        // spill 4 runs. At 4 threads the final pass goes straight to a
        // k=4 key-range partitioned merge (pivot sampling, boundary
        // search, multi-slice chain); at 2 it partitions 2-way; at 8 the
        // tighter share forces an intermediate k=4 loser-tree pass first
        // — a different merge structure at every thread count, same
        // bytes.
        DeterminismCase{16, 8, 250000, 2 << 20, 8, 0},
        // Two spilled runs of duplicate-saturated keys (5 distinct):
        // parallel counting sort over skewed buckets, and partition
        // pivots that collapse onto repeated keys, leaving some
        // partitions empty.
        DeterminismCase{16, 8, 150000, 4 << 20, 64, 5},
        // All keys identical and spilling: output must equal arrival order,
        // and every pivot collapses to the same key (one partition gets
        // everything, the rest are empty).
        DeterminismCase{24, 8, 4000, 48 << 10, 64, 1},
        // Odd record size, short key, tiny budget → several runs (radix
        // consumes the whole key; ties resolved by arrival).
        DeterminismCase{7, 3, 5000, 16 << 10, 64, 0},
        // Odd record size, 1-byte key: maximal duplicates per bucket, and
        // the comparison fallback sees a zero-length tail.
        DeterminismCase{13, 1, 5000, 32 << 10, 64, 0},
        // 5-byte key, small budget and fan-in: radix tail + multi-pass.
        DeterminismCase{21, 5, 8000, 64 << 10, 8, 0}));

TEST(ExternalSort, AddBatchMatchesAddRecordByRecord) {
  const size_t kRecord = 40, kKey = 32, kCount = 5000;
  const std::vector<uint8_t> blob = MakeRecords(kCount, kRecord, kKey, 0, 99);
  ExternalSortOptions opts;
  opts.record_bytes = kRecord;
  opts.key_bytes = kKey;
  opts.memory_budget_bytes = 128 << 10;  // ~1638-record buffers: spills
                                         // mid-batch
  ScratchDir d1, d2;
  opts.tmp_dir = d1.path();
  const std::vector<uint8_t> one_by_one = SortAll(blob, opts, false);
  opts.tmp_dir = d2.path();
  const std::vector<uint8_t> batched = SortAll(blob, opts, true);
  EXPECT_EQ(one_by_one, batched);
}

TEST(ExternalSort, SortThreadsEnvOverride) {
  ::setenv("COCONUT_SORT_THREADS", "1", 1);
  ExternalSortOptions opts;
  opts.record_bytes = 40;
  opts.key_bytes = 32;
  opts.tmp_dir = "/tmp";
  opts.num_threads = 4;
  {
    ExternalSorter sorter(opts);
    EXPECT_EQ(sorter.resolved_threads(), 1u);
  }
  ::setenv("COCONUT_SORT_THREADS", "3", 1);
  {
    ExternalSorter sorter(opts);
    EXPECT_EQ(sorter.resolved_threads(), 3u);
  }
  ::unsetenv("COCONUT_SORT_THREADS");
  {
    ExternalSorter sorter(opts);
    EXPECT_EQ(sorter.resolved_threads(), opts.num_threads);
  }
}

TEST(ExternalSort, DuplicateKeysAllSurvive) {
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = 16;
  opts.key_bytes = 8;
  opts.memory_budget_bytes = 1 << 20;
  opts.tmp_dir = dir.path();
  ExternalSorter sorter(opts);
  // 1000 records, only 4 distinct keys; payload disambiguates.
  for (uint64_t i = 0; i < 1000; ++i) {
    uint8_t rec[16] = {};
    const uint64_t key = i % 4;
    std::memcpy(rec, &key, 8);
    std::memcpy(rec + 8, &i, 8);
    ASSERT_OK(sorter.Add(rec));
  }
  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  EXPECT_EQ(stream->count(), 1000u);
  uint8_t rec[16];
  Status st;
  size_t n = 0;
  uint64_t prev_key = 0;
  std::vector<bool> seen(1000, false);
  while (stream->Next(rec, &st)) {
    ASSERT_OK(st);
    uint64_t key, payload;
    std::memcpy(&key, rec, 8);
    std::memcpy(&payload, rec + 8, 8);
    EXPECT_GE(key, prev_key);
    prev_key = key;
    ASSERT_LT(payload, 1000u);
    EXPECT_FALSE(seen[payload]);
    seen[payload] = true;
    ++n;
  }
  EXPECT_EQ(n, 1000u);
}

}  // namespace
}  // namespace coconut
