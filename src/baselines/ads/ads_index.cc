#include "src/baselines/ads/ads_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/timer.h"
#include "src/core/knn.h"
#include "src/core/sims_common.h"
#include "src/series/distance.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {

Status AdsIndex::Build(const std::string& raw_path,
                       const std::string& storage_path,
                       const AdsOptions& options,
                       std::unique_ptr<AdsIndex>* out, AdsBuildStats* stats) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  AdsBuildStats local;
  AdsBuildStats* st_out = stats != nullptr ? stats : &local;

  std::unique_ptr<AdsIndex> index(new AdsIndex());
  index->options_ = options;
  index->raw_path_ = raw_path;

  Isax2Options core_opts;
  core_opts.summary = options.summary;
  core_opts.leaf_capacity = options.leaf_capacity;
  core_opts.materialized = false;  // pass 1 always indexes summaries only
  core_opts.memory_budget_bytes = options.memory_budget_bytes;
  core_opts.num_threads = options.num_threads;
  COCONUT_RETURN_IF_ERROR(Isax2Index::Create(core_opts, storage_path,
                                             raw_path, &index->core_));
  COCONUT_RETURN_IF_ERROR(RawSeriesFile::Open(
      raw_path, options.summary.series_length, &index->raw_file_));

  // Pass 1: sequential scan; top-down insertion of (SAX, position) pairs.
  Stopwatch watch;
  {
    DatasetScanner scanner;
    COCONUT_RETURN_IF_ERROR(
        scanner.Open(raw_path, options.summary.series_length));
    const size_t w = options.summary.segments;
    std::vector<Value> series(options.summary.series_length);
    std::vector<uint8_t> sax(w);
    index->sax_array_.reserve(scanner.count() * w);
    Status st;
    uint64_t position = 0;
    const uint64_t series_bytes =
        options.summary.series_length * sizeof(Value);
    while (scanner.Next(series.data(), &st)) {
      SaxFromSeries(series.data(), options.summary, sax.data());
      COCONUT_RETURN_IF_ERROR(
          index->core_->InsertSummary(sax.data(), position, nullptr));
      index->sax_array_.insert(index->sax_array_.end(), sax.begin(),
                               sax.end());
      position += series_bytes;
    }
    COCONUT_RETURN_IF_ERROR(st);
    COCONUT_RETURN_IF_ERROR(index->core_->FlushAll());
  }
  st_out->pass1_seconds = watch.ElapsedSeconds();
  st_out->num_entries = index->core_->num_entries();

  // Pass 2 (ADSFull only): materialize the raw series into the leaves.
  if (options.materialized) {
    watch.Restart();
    COCONUT_RETURN_IF_ERROR(index->MaterializeLeaves());
    st_out->materialize_seconds = watch.ElapsedSeconds();
  }

  *out = std::move(index);
  return Status::OK();
}

Status AdsIndex::MaterializeLeaves() {
  return core_->MaterializeInto(raw_path_ + ".ads-mat");
}

Status AdsIndex::ApproxSearch(const Value* query, SearchResult* result,
                              size_t k) {
  // ADS+ refines (splits) the leaf the query lands in before answering,
  // which is how leaf sizes shrink adaptively during query answering.
  if (options_.adaptive_leaf_target > 0 && !options_.materialized) {
    std::vector<uint8_t> sax(options_.summary.segments);
    SaxFromSeries(query, options_.summary, sax.data());
    COCONUT_RETURN_IF_ERROR(
        core_->RefineLeafFor(sax.data(), options_.adaptive_leaf_target));
  }
  return core_->ApproxSearch(query, result, k);
}

Status AdsIndex::ExactSearch(const Value* query, SearchResult* result,
                             size_t k) {
  SearchResult approx;
  COCONUT_RETURN_IF_ERROR(ApproxSearch(query, &approx, k));
  KnnCollector knn(k);
  knn.Seed(approx);

  const SummaryOptions& sum = options_.summary;
  std::vector<double> paa(sum.segments);
  PaaTransform(query, sum.series_length, sum.segments, paa.data());

  const uint64_t n = sax_array_.size() / sum.segments;
  std::vector<double> mindists;
  Isax2Options tmp;
  tmp.num_threads = options_.num_threads;
  ParallelMindists(paa.data(), sax_array_.data(), n, sum,
                   tmp.EffectiveThreads(), &mindists);

  // Skip-sequential scan in raw-file order: the i-th summary corresponds to
  // the series at byte i * series_bytes.
  const size_t series_len = sum.series_length;
  const uint64_t series_bytes = series_len * sizeof(Value);
  uint64_t visited = 0;
  fetch_buf_.resize(series_len);
  for (uint64_t i = 0; i < n; ++i) {
    if (mindists[i] >= knn.bound_sq()) continue;
    COCONUT_RETURN_IF_ERROR(
        raw_file_->ReadAt(i * series_bytes, fetch_buf_.data()));
    const double d = SquaredEuclideanEarlyAbandon(fetch_buf_.data(), query,
                                                  series_len, knn.bound_sq());
    ++visited;
    knn.Offer(i * series_bytes, d);
  }

  knn.Finalize(result);
  result->visited_records = approx.visited_records + visited;
  result->leaves_read = approx.leaves_read;
  return Status::OK();
}

Status AdsIndex::InsertBatch(const std::vector<Series>& batch,
                             uint64_t first_offset) {
  const SummaryOptions& sum = options_.summary;
  const uint64_t series_bytes = sum.series_length * sizeof(Value);
  std::vector<uint8_t> sax(sum.segments);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].size() != sum.series_length) {
      return Status::InvalidArgument("batch series length mismatch");
    }
    SaxFromSeries(batch[i].data(), sum, sax.data());
    const uint64_t offset = first_offset + i * series_bytes;
    COCONUT_RETURN_IF_ERROR(core_->InsertSummary(
        sax.data(), offset,
        options_.materialized ? batch[i].data() : nullptr));
    sax_array_.insert(sax_array_.end(), sax.begin(), sax.end());
  }
  // The raw file grew: reopen both handles so fetches see the new series.
  COCONUT_RETURN_IF_ERROR(
      RawSeriesFile::Open(raw_path_, sum.series_length, &raw_file_));
  COCONUT_RETURN_IF_ERROR(core_->ReopenRaw());
  return Status::OK();
}

uint64_t AdsIndex::StorageBytes() const { return core_->StorageBytes(); }

}  // namespace coconut
