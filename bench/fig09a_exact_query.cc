// Figure 9a: exact query answering time vs dataset size. Paper result: the
// Coconut-Tree family is fastest because its indexes are contiguous and
// compact, and the better approximate seed prunes more of the SIMS scan.
#include "bench/bench_util.h"
#include "bench/query_fixture.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
// Leaf capacity scaled with the laptop-scale N so that leaf/N matches the
// paper's ratio (2000 leaves of 2000 entries over tens of millions).
constexpr size_t kLeafCapacity = 100;

void Run() {
  Banner("Figure 9a", "exact query answering vs dataset size");
  const size_t queries = 20;
  PrintHeader({"N", "method", "avg_query", "avg_visited"});
  for (size_t count : {10000 * Scale(), 20000 * Scale(), 40000 * Scale()}) {
    BenchDir dir;
    const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk,
                                           count, kLength, 17, "data.bin");
    QueryFixture f =
        BuildQueryFixture(dir, raw, kLength, kLeafCapacity, 64ull << 20);
    auto qs = MakeQueries(DatasetKind::kRandomWalk, queries, kLength, 1700);

    auto run = [&](const char* name, auto&& exact) {
      double total = 0.0;
      uint64_t visited = 0;
      for (const Series& q : qs) {
        SearchResult r;
        Stopwatch w;
        CheckOk(exact(q, &r), name);
        total += w.ElapsedSeconds();
        visited += r.visited_records;
      }
      PrintRow({FmtCount(count), name, FmtSeconds(total / queries),
                FmtCount(visited / queries)});
    };
    run("CTree", [&](const Series& q, SearchResult* r) {
      return f.ctree->ExactSearch(q.data(), 1, r);
    });
    run("CTreeFull", [&](const Series& q, SearchResult* r) {
      return f.ctree_full->ExactSearch(q.data(), 1, r);
    });
    run("ADS+", [&](const Series& q, SearchResult* r) {
      return f.ads_plus->ExactSearch(q.data(), r);
    });
    run("ADSFull", [&](const Series& q, SearchResult* r) {
      return f.ads_full->ExactSearch(q.data(), r);
    });
  }
  std::printf(
      "\nExpectation (paper Fig 9a): Coconut-Tree and Coconut-Tree-Full\n"
      "outperform the ADS family at every dataset size; fewer records are\n"
      "visited because the approximate seed is better.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
