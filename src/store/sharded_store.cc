#include "src/store/sharded_store.h"

#include <future>
#include <utility>

#include "src/common/env.h"
#include "src/core/knn.h"
#include "src/summary/invsax.h"

namespace coconut {

namespace {

/// Builds a ZKey from four big-endian 64-bit words (most significant first).
ZKey KeyFromWords(const uint64_t words[ZKey::kWords]) {
  uint8_t bytes[ZKey::kBytes];
  for (size_t i = 0; i < ZKey::kWords; ++i) {
    for (size_t b = 0; b < 8; ++b) {
      bytes[i * 8 + b] = static_cast<uint8_t>(words[i] >> (56 - 8 * b));
    }
  }
  return ZKey::DeserializeBE(bytes);
}

/// Lower bound of shard `index` when the 256-bit key space is split into
/// `num_shards` even ranges: floor(index * 2^256 / num_shards), computed by
/// base-2^64 long division (the numerator's digits are [index, 0, 0, 0, 0]).
ZKey ShardLowerBound(size_t index, size_t num_shards) {
  uint64_t words[ZKey::kWords];
  unsigned __int128 rem = index;  // index < num_shards, so digit 0 yields 0
  for (size_t w = 0; w < ZKey::kWords; ++w) {
    const unsigned __int128 cur = rem << 64;
    words[w] = static_cast<uint64_t>(cur / num_shards);
    rem = cur % num_shards;
  }
  return KeyFromWords(words);
}

}  // namespace

Status ShardedStore::Open(const std::string& dir, const StoreOptions& options,
                          std::unique_ptr<ShardedStore>* out) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  store->options_ = options;
  store->dir_ = dir;
  store->pool_ = ThreadPool::Shared();
  COCONUT_RETURN_IF_ERROR(MakeDirs(dir));

  const size_t series_length = options.forest.tree.summary.series_length;
  if (StoreManifestExists(dir)) {
    // Reopen: the committed manifest pins shard count and boundaries;
    // options.num_shards is ignored so routing matches the stored data.
    COCONUT_RETURN_IF_ERROR(ReadStoreManifest(dir, &store->manifest_));
    if (store->manifest_.series_length != series_length) {
      return Status::InvalidArgument(
          "store was created with a different series_length");
    }
  } else {
    // A directory holding shard data but no manifest is a damaged store,
    // not a new one: re-partitioning with the caller's num_shards would
    // silently mis-route (and possibly drop) the existing data.
    if (FileExists(JoinPath(JoinPath(dir, "shard-0"), "raw.bin"))) {
      return Status::Corruption(
          "store directory has shard data but no manifest");
    }
    // New store: commit the manifest before any data exists, so a crash
    // between manifest commit and first insert reopens as a valid empty
    // store.
    StoreManifest manifest;
    manifest.series_length = series_length;
    for (size_t i = 0; i < options.num_shards; ++i) {
      ShardInfo info;
      info.lower_bound = ShardLowerBound(i, options.num_shards);
      info.dir = "shard-" + std::to_string(i);
      manifest.shards.push_back(std::move(info));
    }
    COCONUT_RETURN_IF_ERROR(WriteStoreManifest(dir, manifest));
    store->manifest_ = std::move(manifest);
  }

  // Open every shard forest. Each forest recovers its run state from the
  // shard's raw dataset file (the write-ahead source of truth), so no run
  // bookkeeping in the manifest is needed for crash recovery.
  for (const ShardInfo& info : store->manifest_.shards) {
    const std::string shard_dir = JoinPath(dir, info.dir);
    COCONUT_RETURN_IF_ERROR(MakeDirs(shard_dir));
    store->raw_paths_.push_back(JoinPath(shard_dir, "raw.bin"));
    std::unique_ptr<CoconutForest> forest;
    COCONUT_RETURN_IF_ERROR(CoconutForest::Open(
        store->raw_paths_.back(), shard_dir, options.forest, &forest));
    store->shards_.push_back(std::move(forest));
  }
  *out = std::move(store);
  return Status::OK();
}

size_t ShardedStore::ShardForKey(const ZKey& key) const {
  // Largest shard whose lower bound is <= key; boundaries are immutable
  // after Open, so no lock is needed.
  size_t lo = 0, hi = manifest_.shards.size();
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (manifest_.shards[mid].lower_bound <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t ShardedStore::ShardForSeries(const Series& series) const {
  return ShardForKey(
      InvSaxFromSeries(series.data(), options_.forest.tree.summary));
}

Status ShardedStore::Insert(const Series& series) {
  if (series.size() != options_.forest.tree.summary.series_length) {
    return Status::InvalidArgument("series length mismatch");
  }
  return shards_[ShardForSeries(series)]->Insert(series);
}

Status ShardedStore::InsertBatch(const std::vector<Series>& batch) {
  const size_t n = options_.forest.tree.summary.series_length;
  for (const Series& s : batch) {
    if (s.size() != n) {
      return Status::InvalidArgument("series length mismatch");
    }
  }
  // Route every series, and hand the whole batch straight to the owner
  // when a single shard gets everything (always true for 1-shard stores) —
  // no copy, no dispatch overhead.
  std::vector<size_t> owner(batch.size());
  bool single_shard = true;
  for (size_t i = 0; i < batch.size(); ++i) {
    owner[i] = ShardForSeries(batch[i]);
    if (owner[i] != owner[0]) single_shard = false;
  }
  if (batch.empty()) return Status::OK();
  if (single_shard) return shards_[owner[0]]->InsertBatch(batch);

  // Split by owning shard, then insert the sub-batches concurrently: the
  // first non-empty shard runs on the calling thread (caller participation
  // keeps a saturated pool from stalling the write), the rest as pool tasks.
  std::vector<std::vector<Series>> buckets(shards_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    buckets[owner[i]].push_back(batch[i]);
  }
  std::vector<std::future<Status>> pending;
  int inline_shard = -1;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    if (inline_shard < 0) {
      inline_shard = static_cast<int>(i);
      continue;
    }
    pending.push_back(pool_->Async(
        [this, i, &buckets]() { return shards_[i]->InsertBatch(buckets[i]); }));
  }
  Status first_error = Status::OK();
  if (inline_shard >= 0) {
    first_error = shards_[inline_shard]->InsertBatch(buckets[inline_shard]);
  }
  for (auto& f : pending) {
    const Status st = f.get();
    if (first_error.ok() && !st.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedStore::ForEachShardParallel(
    const std::function<Status(size_t)>& fn) const {
  std::vector<std::future<Status>> pending;
  pending.reserve(shards_.size());
  for (size_t i = 1; i < shards_.size(); ++i) {
    pending.push_back(pool_->Async([&fn, i]() { return fn(i); }));
  }
  Status first_error = fn(0);  // caller participates with shard 0
  for (auto& f : pending) {
    const Status st = f.get();
    if (first_error.ok() && !st.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedStore::CommitManifestLocked() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    manifest_.shards[i].entries = shards_[i]->num_entries();
  }
  return WriteStoreManifest(dir_, manifest_);
}

Status ShardedStore::Flush() {
  COCONUT_RETURN_IF_ERROR(
      ForEachShardParallel([this](size_t i) { return shards_[i]->Flush(); }));
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return CommitManifestLocked();
}

Status ShardedStore::CompactAll() {
  // Level 1 of parallel compaction: independent shards compact
  // concurrently. Level 2 happens inside each shard, where the runs-merge
  // is chunked over the same pool (nested ParallelFor is deadlock-free by
  // caller participation).
  COCONUT_RETURN_IF_ERROR(ForEachShardParallel(
      [this](size_t i) { return shards_[i]->CompactAll(); }));
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return CommitManifestLocked();
}

ShardedStore::Snapshot ShardedStore::GetSnapshot() const {
  Snapshot snap;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snap.shards.push_back(shard->GetSnapshot());
  }
  return snap;
}

uint64_t ShardedStore::num_entries() const {
  return GetSnapshot().num_entries();
}

void ShardedStore::MergeShardResults(const std::vector<SearchResult>& per_shard,
                                     size_t k, SearchResult* out) {
  KnnCollector knn(k);
  uint64_t visited = 0;
  uint64_t leaves_read = 0;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    visited += per_shard[s].visited_records;
    leaves_read += per_shard[s].leaves_read;
    for (const Neighbor& nb : per_shard[s].neighbors) {
      knn.Offer(EncodeOffset(s, nb.offset), nb.distance * nb.distance);
    }
  }
  knn.Finalize(out);
  out->visited_records = visited;
  out->leaves_read = leaves_read;
}

Status ShardedStore::ExactSearch(const Value* query, SearchResult* result,
                                 size_t k) const {
  return ExactSearch(GetSnapshot(), query, result, k);
}

Status ShardedStore::ExactSearch(const Snapshot& snapshot, const Value* query,
                                 SearchResult* result, size_t k,
                                 CoconutTree::QueryScratch* scratch) const {
  if (snapshot.shards.size() != shards_.size()) {
    return Status::InvalidArgument("snapshot shard count mismatch");
  }
  if (snapshot.num_entries() == 0) return Status::NotFound("empty store");
  CoconutTree::QueryScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  // Shards partition the data, so merging per-shard exact top-k answers
  // yields the global top-k (the forest's per-run argument, one level up).
  std::vector<SearchResult> per_shard(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (snapshot.shards[i].num_entries() == 0) continue;
    COCONUT_RETURN_IF_ERROR(shards_[i]->ExactSearch(
        snapshot.shards[i], query, &per_shard[i], k, scratch));
  }
  MergeShardResults(per_shard, k, result);
  return Status::OK();
}

Status ShardedStore::ApproxSearch(const Value* query, size_t num_leaves,
                                  SearchResult* result, size_t k) const {
  return ApproxSearch(GetSnapshot(), query, num_leaves, result, k);
}

Status ShardedStore::ApproxSearch(const Snapshot& snapshot, const Value* query,
                                  size_t num_leaves, SearchResult* result,
                                  size_t k,
                                  CoconutTree::QueryScratch* scratch) const {
  if (snapshot.shards.size() != shards_.size()) {
    return Status::InvalidArgument("snapshot shard count mismatch");
  }
  if (snapshot.num_entries() == 0) return Status::NotFound("empty store");
  CoconutTree::QueryScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  std::vector<SearchResult> per_shard(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (snapshot.shards[i].num_entries() == 0) continue;
    COCONUT_RETURN_IF_ERROR(shards_[i]->ApproxSearch(
        snapshot.shards[i], query, num_leaves, &per_shard[i], k, scratch));
  }
  MergeShardResults(per_shard, k, result);
  return Status::OK();
}

}  // namespace coconut
